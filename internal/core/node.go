package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/colog"
	"repro/internal/store"
	"repro/internal/transport"
)

// InvokeSolverPred is the reserved event predicate that triggers constraint
// solving when a tuple of it is derived or inserted (the paper's
// invokeSolver event).
const InvokeSolverPred = "invokeSolver"

// Config tunes one Cologne instance.
type Config struct {
	// Params binds named Colog parameters (max_migrates, F_mindiff, ...).
	Params map[string]colog.Value
	// Keys declares primary-key columns per table (NDlog materialize
	// semantics); tables without an entry use whole-row set semantics.
	Keys map[string][]int
	// Events lists predicates with event semantics: their tuples stream
	// through rules but are never stored. invokeSolver is always an event.
	Events []string
	// SolverMaxTime bounds each COP execution (the paper's
	// SOLVER_MAX_TIME); zero means no limit.
	SolverMaxTime time.Duration
	// SolverMaxNodes bounds search nodes per COP execution; zero = no limit.
	SolverMaxNodes int64
	// SolverPropagate enables forward-checking propagation in the solver.
	SolverPropagate bool
	// SolverEngine selects the search core: "" or "event" is the
	// event-driven propagation engine, "legacy" the seed forward-checking
	// core. Both take identical pruning decisions by default, so results
	// match; "legacy" exists for ablations and equivalence tests. Any
	// other value makes Solve return an error.
	SolverEngine string
	// SolverFixpoint drains the propagator queue to fixpoint after every
	// assignment (event engine only): strictly stronger pruning, same
	// optima, fewer nodes — so under a binding node budget the incumbent
	// may differ from the default schedule's.
	SolverFixpoint bool
	// SolverRestarts, when positive, runs each COP as a restart sequence
	// with geometrically growing node limits; saved phases feed the
	// warm-start hints of later runs.
	SolverRestarts int
	// GroundWorkers bounds the worker pool grounding independent solver
	// rules in parallel: 0 picks a default from GOMAXPROCS, 1 (or any
	// negative value) forces serial grounding. Results are merged in rule
	// order, so the outcome is identical at any setting.
	GroundWorkers int
	// GroundMode selects the grounder's join evaluation strategy. "" or
	// "streaming" (the default) pipelines joins directly over the tables'
	// arrival-ordered scans and persistent indexes, with compares pushed
	// down into the row source — no merged row sets or transient per-solve
	// indexes are materialized (see stream.go). "materialized" is the escape
	// hatch that restores the seed behavior: per-predicate merged symbolic
	// row sets and transient hash indexes rebuilt each solve. Both modes
	// produce byte-identical tables, objectives, and solver search traces
	// (TestStreamingGroundEquivalence); they differ only in allocation and
	// speed. Any other value makes Solve return an error.
	GroundMode string
	// SolverIncremental enables incremental re-grounding: the node keeps the
	// grounded solver model between solves and, on the next solve, re-grounds
	// only the rule instantiations affected by the tuples that changed,
	// patching the existing model in place (see incremental.go). Solutions
	// and objectives are identical to fresh grounding; only the work per
	// re-solve shrinks.
	SolverIncremental bool
	// SolverWarmStart seeds each solve's value ordering from the previous
	// solve's materialized assignments when the caller supplies no explicit
	// hint. Warm starts steer the search, so under node or time budgets the
	// returned incumbent may differ from a cold solve's.
	SolverWarmStart bool
	// BatchDeltas coalesces the outgoing deltas of one flush into a single
	// batch frame per destination (see wireBatchVersion in tuple.go): fewer,
	// larger messages with identical delivery contents and order. Combined
	// with HoldOutbox this batches per (epoch, destination), which is what
	// the cluster runtime enables at scale. Message-level traces (counts)
	// differ from unbatched runs; table state and solve results do not.
	BatchDeltas bool
	// Storage selects the node's storage backend (see internal/store). Nil
	// means a private in-memory backend — the pre-storage behavior. A
	// backend with a write-ahead log (store.Open("disk", ...)) makes every
	// visible transition durable: the node logs external updates, solver
	// materializations, and resync outcomes, and ReplayNode can rebuild
	// the node's exact state from the log alone. The same Store value must
	// be handed back on restart — its table files and log are the node's
	// persistent identity.
	Storage store.Store
	// DeferFacts skips the program-fact load inside NewNode; the caller
	// must invoke InsertProgramFacts itself once every peer the facts'
	// derivations may reach is registered. Multi-process sharded runs need
	// this: a shard that loaded facts while a peer process was still
	// spawning would ship deltas to endpoints with no handler yet.
	DeferFacts bool
}

// NodeStats counts a node's evaluation work.
type NodeStats struct {
	DeltasProcessed int64
	TuplesSent      int64
	Solves          int64
}

// Node is one Cologne instance: a distributed query engine plus a
// constraint-solver bridge, executing an analyzed Colog program at a given
// network address.
type Node struct {
	Addr string

	res    *analysis.Result
	cfg    Config
	tr     transport.Transport
	tables map[string]*table
	plans  map[string][]*plan
	aggs   map[int]*aggState

	queue    []delta
	qhead    int
	outbox   []outMsg
	holding  bool
	draining bool
	mu       sync.Mutex

	// Recursive-group (DRed) state; see dred.go.
	groups      []*recursiveGroup
	groupOfHead map[int]int
	feedsGroup  map[string][]int
	dirtyGroups map[int]bool

	lastMaterialized map[string][]Tuple

	// lastDecisions is the decision snapshot published by the most recent
	// Tick (see tick.go) — the baseline its successor diffs against. It
	// advances on degraded ticks too, unlike lastMaterialized, which only
	// completed solves touch.
	lastDecisions []Assignment

	// Incremental re-grounding state (cfg.SolverIncremental): the grounding
	// cache of the previous solve, and the per-predicate net row changes
	// accumulated since it was built. See incremental.go.
	ground       *groundState
	groundDeltas map[string]map[string]*netDelta
	deltaKeyBuf  []byte

	// Replica mirrors and resync-protocol state (recovery.go): what this
	// node has asserted at each peer, what each peer has asserted here, the
	// in-progress chunked resync sessions, and the pull counters.
	repl replica

	// Storage backend and its write-ahead delta log (nil log for the
	// in-memory backend). During replay (see wal.go) the node re-executes
	// its logged transitions with logging and transmission suppressed;
	// replayRecs/replayPos form the record cursor that lets a replayed
	// invokeSolver event consume the logged solver outcome instead of
	// re-running the solver.
	store      store.Store
	wal        *store.WAL
	replaying  bool
	replayRecs [][]byte
	replayPos  int
	// ensure makes already-visible inserts a no-op (SetEnsureInserts).
	ensure bool

	// OnInvokeSolver, when non-nil, runs instead of the default Solve
	// whenever an invokeSolver event fires.
	OnInvokeSolver func(n *Node)
	// LastSolveResult holds the most recent solver outcome (also returned
	// by Solve).
	LastSolveResult *SolveResult
	// LastError records the most recent asynchronous evaluation error
	// (e.g. triggered by an incoming network tuple).
	LastError error

	stats NodeStats
}

// NewNode creates a Cologne instance for an analyzed program. The node
// registers itself on the transport under addr.
func NewNode(addr string, res *analysis.Result, cfg Config, tr transport.Transport) (*Node, error) {
	n, err := newNode(addr, res, cfg, tr)
	if err != nil {
		return nil, err
	}
	// Load program facts addressed to this node (or unaddressed facts in
	// centralized mode), unless the caller defers them for multi-process
	// bring-up.
	if !cfg.DeferFacts {
		if err := n.InsertProgramFacts(); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// RestoreNode rebuilds a node from a checkpoint exported by
// ExportCheckpoint: the instance is constructed without loading program
// facts (the checkpoint is the state those facts — and everything after
// them — produced) and the checkpointed tables, aggregate views, replica
// mirrors, and materialization memory are installed verbatim, including
// every row's arrival-order seq. No deltas are emitted and nothing is sent:
// a restored node resumes exactly where the checkpoint left off, and the
// anti-entropy resync (StartResync) pulls whatever the cluster decided
// since.
func RestoreNode(addr string, res *analysis.Result, cfg Config, tr transport.Transport, checkpoint []byte) (*Node, error) {
	n, err := newNode(addr, res, cfg, tr)
	if err != nil {
		return nil, err
	}
	if err := n.ImportCheckpoint(checkpoint); err != nil {
		return nil, err
	}
	return n, nil
}

// newNode builds and registers an instance without loading program facts.
func newNode(addr string, res *analysis.Result, cfg Config, tr transport.Transport) (*Node, error) {
	if _, err := streamingGround(cfg.GroundMode); err != nil {
		return nil, err
	}
	plans, err := compileRules(res)
	if err != nil {
		return nil, err
	}
	n := &Node{
		Addr:             addr,
		res:              res,
		cfg:              cfg,
		tr:               tr,
		tables:           map[string]*table{},
		plans:            plans,
		aggs:             map[int]*aggState{},
		lastMaterialized: map[string][]Tuple{},
	}
	st := cfg.Storage
	if st == nil {
		st = store.NewMemory()
	}
	n.store = st
	n.wal = st.Log()
	events := map[string]bool{InvokeSolverPred: true}
	for _, e := range cfg.Events {
		events[e] = true
	}
	keys := inferShipKeys(res, cfg.Keys, res.Program.Rules)
	for name, ti := range res.Tables {
		rows, err := tableRows(st, name, ti.Arity, events[name])
		if err != nil {
			return nil, fmt.Errorf("core: opening table %s at %s: %w", name, addr, err)
		}
		n.tables[name] = newTable(name, ti.Arity, keys[name], events[name], rows)
	}
	if _, ok := n.tables[InvokeSolverPred]; !ok {
		n.tables[InvokeSolverPred] = newTable(InvokeSolverPred, 0, nil, true, store.NewMemTable())
	}
	if cfg.Storage != nil {
		// A caller-supplied backend may be a survivor of a previous node
		// generation (restart): its tables still hold the pre-crash rows.
		// Every construction path starts from empty tables — NewNode
		// re-inserts program facts, RestoreNode installs the checkpoint,
		// ReplayNode re-executes the log.
		for _, t := range n.tables {
			t.rows.Clear()
		}
	}
	n.dirtyGroups = map[int]bool{}
	n.repl.init()
	n.initDred()
	if tr != nil {
		tr.Register(addr, n.handleMessage)
	}
	return n, nil
}

// tableRows picks the RowStore for a table: event tables are never stored
// (their deltas stream through once), so they always get a throwaway
// in-memory store; everything else comes from the backend.
func tableRows(st store.Store, name string, arity int, event bool) (store.RowStore, error) {
	if event {
		return store.NewMemTable(), nil
	}
	return st.Table(name, arity)
}

// Stats returns evaluation counters.
func (n *Node) Stats() NodeStats { return n.stats }

// LogStats returns the cumulative record and byte counts appended to the
// node's write-ahead delta log (zeros for the in-memory backend). The
// counters are monotone across checkpoints/compactions and across node
// generations sharing one backend, so interval deltas are meaningful.
func (n *Node) LogStats() (records, bytes int64) {
	if n.wal == nil {
		return 0, 0
	}
	return n.wal.Stats()
}

// groundWorkers resolves the grounding worker-pool size.
func (n *Node) groundWorkers() int {
	w := n.cfg.GroundWorkers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
		if w > 8 {
			w = 8
		}
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runLimited runs fn(0..n-1) on at most workers goroutines and waits for
// completion. A panic inside fn is captured and re-raised on the calling
// goroutine (lowest index wins), so callers can recover from parallel
// grounding exactly as they would from a serial run.
func runLimited(n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int)
	panics := make([]any, n)
	run := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				panics[i] = r
			}
		}()
		fn(i)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				run(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}

// Program returns the analyzed program the node executes.
func (n *Node) Program() *analysis.Result { return n.res }

// Insert adds a fact and runs incremental evaluation to fixpoint.
func (n *Node) Insert(pred string, vals ...colog.Value) error {
	return n.update(pred, vals, +1)
}

// Delete retracts a fact and runs incremental evaluation to fixpoint.
func (n *Node) Delete(pred string, vals ...colog.Value) error {
	return n.update(pred, vals, -1)
}

// outMsg is a tuple delta awaiting transmission. Remote sends are buffered
// during evaluation and flushed after the node's lock is released, so a
// synchronous transport delivering a reply back to this node cannot
// deadlock.
type outMsg struct {
	to      string
	payload []byte
}

func (n *Node) update(pred string, vals []colog.Value, sign int) error {
	return n.updateFrom(pred, vals, sign, "")
}

// updateFrom is update with the sending peer recorded: network deliveries
// pass the transport-level sender so the receive-side replica mirror tracks
// what each peer has asserted here (the state the anti-entropy resync
// reconciles after a restart; see recovery.go).
func (n *Node) updateFrom(pred string, vals []colog.Value, sign int, origin string) error {
	return n.updateFromLogged(pred, vals, sign, origin, true)
}

// updateFromLogged is updateFrom with write-ahead logging switchable off:
// resync application and log replay re-apply updates that are already
// covered by an atomic resync record (or by the log itself) and must not
// log them again.
func (n *Node) updateFromLogged(pred string, vals []colog.Value, sign int, origin string, logIt bool) error {
	n.mu.Lock()
	t, ok := n.tables[pred]
	if !ok {
		n.mu.Unlock()
		return everrf(pred, "unknown predicate")
	}
	if len(vals) != t.arity {
		n.mu.Unlock()
		return everrf(pred, "arity mismatch: table has %d columns, got %d values", t.arity, len(vals))
	}
	if n.ensure && sign > 0 && !t.event && t.contains(vals) {
		n.mu.Unlock()
		return nil // idempotent re-injection: row already visible
	}
	if logIt {
		n.walUpdate(pred, vals, sign, origin)
	}
	if origin != "" && !t.event {
		n.repl.noteRecv(origin, pred, vals, sign)
	}
	n.enqueue(delta{Tuple{pred, vals}, sign, false})
	err := n.drain()
	if n.holding {
		n.mu.Unlock()
		return err
	}
	out := n.takeOutbox()
	n.mu.Unlock()
	if ferr := n.flush(out); err == nil {
		err = ferr
	}
	return err
}

// HoldOutbox toggles outbox holding: while held, updates leave their
// outgoing deltas queued on the node instead of flushing them after each
// call, so one FlushOutbox at the end of an epoch transmits everything the
// node produced — one batch frame per destination when Config.BatchDeltas
// is set. Turning holding off does not flush by itself.
func (n *Node) HoldOutbox(hold bool) {
	n.mu.Lock()
	n.holding = hold
	n.mu.Unlock()
}

// FlushOutbox transmits every held outgoing delta. Safe to call when the
// outbox is empty.
func (n *Node) FlushOutbox() error {
	n.mu.Lock()
	out := n.takeOutbox()
	n.mu.Unlock()
	return n.flush(out)
}

// takeOutbox removes and returns the pending remote sends; the caller must
// hold n.mu.
func (n *Node) takeOutbox() []outMsg {
	out := n.outbox
	n.outbox = nil
	return out
}

// flush transmits buffered messages. Must be called without holding n.mu.
// With Config.BatchDeltas, messages to the same destination coalesce into
// one batch frame (delta order within a destination is preserved). Payload
// buffers return to the wire pool once the transport has consumed them
// (Send must not retain the payload after it returns).
func (n *Node) flush(out []outMsg) error {
	if n.cfg.BatchDeltas && len(out) > 1 {
		return n.flushBatched(out)
	}
	var firstErr error
	for _, m := range out {
		if err := n.tr.Send(n.Addr, m.to, m.payload); err != nil && firstErr == nil {
			firstErr = err
		}
		putWireBuf(m.payload)
	}
	return firstErr
}

// flushBatched groups the outbox per destination (in first-appearance
// order) and sends the merged frames — usually one per destination, more
// when the batch exceeds the per-frame budget (see MergeDeltaPayloads).
// Every buffer is recycled exactly once: a multi-source batch frame is
// recycled along with the sources it copied, while a pass-through frame
// aliases its source and is recycled only as the frame.
func (n *Node) flushBatched(out []outMsg) error {
	var order []string
	grouped := make(map[string][][]byte, 4)
	for _, m := range out {
		if _, ok := grouped[m.to]; !ok {
			order = append(order, m.to)
		}
		grouped[m.to] = append(grouped[m.to], m.payload)
	}
	var firstErr error
	for _, to := range order {
		sources := grouped[to]
		frames, counts, err := mergeDeltaFrames(sources)
		if err != nil {
			// Sources were not consumed into frames; recycle them directly.
			for _, p := range sources {
				putWireBuf(p)
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		src := 0
		for i, frame := range frames {
			if err == nil {
				err = n.tr.Send(n.Addr, to, frame)
			}
			putWireBuf(frame)
			if counts[i] > 1 { // copied batch: sources still owned here
				for _, p := range sources[src : src+counts[i]] {
					putWireBuf(p)
				}
			}
			src += counts[i]
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Rows returns the visible rows of a table, deterministically sorted.
func (n *Node) Rows(pred string) [][]colog.Value {
	n.mu.Lock()
	defer n.mu.Unlock()
	t, ok := n.tables[pred]
	if !ok {
		return nil
	}
	return t.snapshot()
}

// Contains reports whether the exact fact is currently visible.
func (n *Node) Contains(pred string, vals ...colog.Value) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	t, ok := n.tables[pred]
	return ok && t.contains(vals)
}

// TableNames lists the node's table names.
func (n *Node) TableNames() []string {
	names := make([]string, 0, len(n.tables))
	for name := range n.tables {
		names = append(names, name)
	}
	return names
}

// handleMessage ingests one network message: tuple deltas (a single delta
// or a batch frame applied in order) or a resync-protocol frame
// (recovery.go).
func (n *Node) handleMessage(m transport.Message) {
	if len(m.Payload) > 0 {
		switch m.Payload[0] {
		case wireResyncDigestVersion:
			if err := n.handleResyncDigest(m.From, m.Payload); err != nil {
				n.LastError = err
			}
			return
		case wireResyncRowsVersion:
			if err := n.handleResyncRows(m.From, m.Payload); err != nil {
				n.LastError = err
			}
			return
		}
	}
	if len(m.Payload) > 0 && m.Payload[0] == wireDeltaVersion {
		// Unbatched frames dominate the receive path; decode without the
		// slice detour.
		wd, err := decodeDelta(m.Payload)
		if err != nil {
			n.LastError = err
			return
		}
		if err := n.updateFrom(wd.Pred, wd.Vals, wd.Sign, m.From); err != nil {
			n.LastError = err
		}
		return
	}
	wds, err := decodeDeltas(m.Payload)
	if err != nil {
		n.LastError = err
		return
	}
	for _, wd := range wds {
		if err := n.updateFrom(wd.Pred, wd.Vals, wd.Sign, m.From); err != nil {
			n.LastError = err
		}
	}
}

// enqueue schedules a delta; the caller must hold n.mu and call drain.
func (n *Node) enqueue(d delta) { n.queue = append(n.queue, d) }

// drain processes queued deltas to a local fixpoint (pipelined semi-naive
// evaluation): each delta is applied to its table, and the visible
// transitions trigger the compiled delta plans, which may enqueue more
// deltas or ship tuples to other nodes. The queue is consumed through a
// head index so the backing array is reused across bursts instead of
// reallocating as the front advances.
func (n *Node) drain() error {
	if n.draining {
		return nil // re-entrant call from a plan; outer loop continues
	}
	n.draining = true
	defer func() { n.draining = false }()
	var firstErr error
	for {
		for n.qhead < len(n.queue) {
			d := n.queue[n.qhead]
			n.qhead++
			if n.qhead == len(n.queue) {
				n.queue = n.queue[:0]
				n.qhead = 0
			}
			t, ok := n.tables[d.tuple.Pred]
			if !ok {
				if firstErr == nil {
					firstErr = everrf(d.tuple.Pred, "unknown predicate in delta")
				}
				continue
			}
			trs, ntr := t.apply(d.tuple.Vals, d.sign, d.derived)
			for _, tr := range trs[:ntr] {
				if err := n.processTransition(tr, -1); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
		// Deletions touching recursive predicate groups are finalized by a
		// base-fact recompute once the incremental queue is empty.
		gi := n.nextDirtyGroup()
		if gi < 0 {
			break
		}
		delete(n.dirtyGroups, gi)
		if err := n.recomputeGroup(gi); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (n *Node) nextDirtyGroup() int {
	best := -1
	for gi := range n.dirtyGroups {
		if best < 0 || gi < best {
			best = gi
		}
	}
	return best
}

// processTransition fires the delta plans for one visible row transition.
// Plans whose head belongs to skipGroup (or to any group already marked
// dirty) are suppressed: their predicates will be rebuilt by recompute.
func (n *Node) processTransition(tr delta, skipGroup int) error {
	n.stats.DeltasProcessed++
	if tr.tuple.Pred == InvokeSolverPred && tr.sign > 0 {
		n.fireInvokeSolver()
		return nil
	}
	if n.ground != nil {
		n.noteGroundDelta(tr)
	}
	if tr.sign < 0 {
		n.markDirtyFor(tr.tuple.Pred)
	}
	var firstErr error
	for _, p := range n.plans[tr.tuple.Pred] {
		if gi, ok := n.groupOfHead[p.ruleIdx]; ok && (gi == skipGroup || n.dirtyGroups[gi]) {
			continue
		}
		if err := n.runPlan(p, tr); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (n *Node) fireInvokeSolver() {
	// During replay the solver never runs: the log carries the outcome the
	// live node materialized (a solve record, or nothing for an infeasible
	// solve) bracketed by an invoke-done marker; replayInvoke consumes it.
	if n.replaying {
		n.replayInvoke()
		return
	}
	if n.OnInvokeSolver != nil {
		n.OnInvokeSolver(n)
	} else if res, err := n.solveLocked(SolveOptions{}); err != nil {
		n.LastError = err
	} else {
		n.LastSolveResult = res
	}
	// Close the log bracket even when the solve failed or was infeasible:
	// replay must know the invoke finished without materializing.
	n.walInvokeDone()
}

// route delivers a derived head tuple: locally enqueued when the location
// attribute matches this node (or the table has none), otherwise serialized
// and sent over the transport.
func (n *Node) route(tuple Tuple, sign int) error {
	ti := n.res.Tables[tuple.Pred]
	if ti != nil && ti.LocCol >= 0 {
		loc := tuple.Vals[ti.LocCol]
		addr := locAddr(loc)
		if addr != n.Addr {
			if n.tr == nil {
				return everrf(tuple.Pred, "tuple addressed to %q but node has no transport", addr)
			}
			if n.replaying {
				// Replayed derivations do not retransmit — the peers got the
				// live sends (or will reconcile via resync) — but the sent
				// mirror must be rebuilt: it is this node's memory of what it
				// asserted remotely, and the divergence detector needs it.
				if t := n.tables[tuple.Pred]; t != nil && !t.event {
					n.repl.noteSent(addr, tuple.Pred, tuple.Vals, sign)
				}
				return nil
			}
			payload, err := encodeDelta(tuple.Pred, tuple.Vals, sign)
			if err != nil {
				return err
			}
			if t := n.tables[tuple.Pred]; t != nil && !t.event {
				// Mirror what this node asserts at the peer, whether or not
				// the datagram survives the trip — the divergence between
				// this mirror and the peer's receive-side mirror is exactly
				// what the anti-entropy resync heals.
				n.repl.noteSent(addr, tuple.Pred, tuple.Vals, sign)
			}
			n.stats.TuplesSent++
			n.outbox = append(n.outbox, outMsg{to: addr, payload: payload})
			return nil
		}
	}
	n.enqueue(delta{tuple, sign, true})
	return nil
}

// locAddr renders a location value as a transport address.
func locAddr(v colog.Value) string {
	if v.Kind == colog.KindString {
		return v.S
	}
	return v.String()
}

// runPlan executes one compiled delta plan for a visible transition. The
// plan's scratch frame replaces per-row environment maps: bindings are
// trailed and undone on backtrack, so plan execution allocates only for
// emitted head tuples.
func (n *Node) runPlan(p *plan, d delta) error {
	f := p.frame
	f.reset()
	if !matchRow(p.steps[0].argOps, d.tuple.Vals, f) {
		return nil
	}
	return n.execSteps(p, 1, f, d)
}

func (n *Node) execSteps(p *plan, idx int, f *bindFrame, d delta) error {
	if idx == len(p.steps) {
		return n.emitHead(p, f, d.sign)
	}
	step := &p.steps[idx]
	switch step.kind {
	case stepJoin:
		t := n.tables[step.atom.Pred]
		if t == nil {
			return everrf(step.atom.Pred, "unknown predicate in join")
		}
		if len(step.boundCols) > 0 {
			if step.cachedIdx == nil || step.cachedGen != t.indexGen {
				step.cachedIdx = t.ensureIndexNamed(step.idxKey, step.boundCols)
				step.cachedGen = t.indexGen
			}
			key := f.appendProbeKey(step.probeOps)
			for _, r := range step.cachedIdx.probeBytes(key) {
				if err := n.execJoinRow(p, idx, f, d, r.vals); err != nil {
					return err
				}
			}
		} else {
			for _, rowVals := range t.snapshotUnordered() {
				if err := n.execJoinRow(p, idx, f, d, rowVals); err != nil {
					return err
				}
			}
		}
		// Self-join deletion fix: a negative delta's tuple is already out of
		// the store, but derivations pairing it with itself must still be
		// retracted.
		if d.sign < 0 && step.atom.Pred == d.tuple.Pred {
			return n.execJoinRow(p, idx, f, d, d.tuple.Vals)
		}
		return nil
	case stepFilter:
		v, err := evalGround(step.cond, f)
		if err != nil {
			return everrf(ruleName(p.rule), "condition %s: %v", step.cond, err)
		}
		if v.Kind != colog.KindBool {
			return everrf(ruleName(p.rule), "condition %s evaluated to non-boolean %s", step.cond, v)
		}
		if !v.B {
			return nil
		}
		return n.execSteps(p, idx+1, f, d)
	case stepBind, stepAssign:
		v, err := evalGround(step.expr, f)
		if err != nil {
			return everrf(ruleName(p.rule), "binding %s: %v", step.bindVar, err)
		}
		if step.rebind {
			// Reassignment of a bound variable: restore the previous value
			// on backtrack instead of trailing a fresh binding.
			prev := f.vals[step.slot]
			f.vals[step.slot] = v
			err := n.execSteps(p, idx+1, f, d)
			f.vals[step.slot] = prev
			return err
		}
		f.bind(step.slot, v)
		return n.execSteps(p, idx+1, f, d)
	}
	return everrf(ruleName(p.rule), "unknown plan step")
}

// execJoinRow runs one candidate row through a join step: the pushdown
// prefilter rejects most non-matching rows against the raw values before
// the frame is touched, then the full op list binds and checks as before.
func (n *Node) execJoinRow(p *plan, idx int, f *bindFrame, d delta, rowVals []colog.Value) error {
	step := &p.steps[idx]
	if !f.rowPrefilter(step.preCmps, len(step.argOps), rowVals) {
		return nil
	}
	m := f.mark()
	var err error
	if matchRow(step.argOps, rowVals, f) {
		err = n.execSteps(p, idx+1, f, d)
	}
	f.undo(m)
	return err
}

// emitHead projects the binding onto the rule head. Aggregate heads update
// incremental aggregate state; plain heads route the tuple directly.
func (n *Node) emitHead(p *plan, f *bindFrame, sign int) error {
	if len(p.headAggs) > 0 {
		return n.updateAggregate(p, f, sign)
	}
	vals := make([]colog.Value, len(p.headOps))
	for i := range p.headOps {
		op := &p.headOps[i]
		if op.slot >= 0 {
			vals[i] = f.vals[op.slot]
			continue
		}
		v, err := evalGround(op.term, f)
		if err != nil {
			return everrf(ruleName(p.rule), "head argument %d: %v", i, err)
		}
		vals[i] = v
	}
	return n.route(Tuple{p.rule.Head.Pred, vals}, sign)
}

// matchAtom unifies an atom pattern with ground values, extending env.
func matchAtom(a *colog.Atom, vals []colog.Value, env map[string]colog.Value) bool {
	if len(a.Args) != len(vals) {
		return false
	}
	for i, arg := range a.Args {
		switch t := arg.(type) {
		case *colog.VarTerm:
			if bound, ok := env[t.Name]; ok {
				if !bound.Equal(vals[i]) {
					return false
				}
			} else {
				env[t.Name] = vals[i]
			}
		case *colog.ConstTerm:
			if !t.Val.Equal(vals[i]) {
				return false
			}
		default:
			// Expression argument: must be fully bound, then compared.
			if !termBound(arg, mapEnv(env)) {
				return false
			}
			v, err := evalGround(arg, mapEnv(env))
			if err != nil || !v.Equal(vals[i]) {
				return false
			}
		}
	}
	return true
}

func cloneEnv(env map[string]colog.Value) map[string]colog.Value {
	out := make(map[string]colog.Value, len(env)+4)
	for k, v := range env {
		out[k] = v
	}
	return out
}

// snapshotUnordered returns visible rows for join scans (hot path) in the
// stable arrival order, so delta evaluation — and therefore the arrival
// order of derived tuples — is deterministic. The result is memoized
// between table mutations; callers must not append to it without re-slicing
// (the self-join fix uses a full slice expression).
func (t *table) snapshotUnordered() [][]colog.Value {
	return t.snapshotStable()
}

// Dump renders all tables for debugging.
func (n *Node) Dump() string {
	s := fmt.Sprintf("node %s:\n", n.Addr)
	for _, name := range sortedTableNames(n.tables) {
		t := n.tables[name]
		if t.size() == 0 {
			continue
		}
		for _, vals := range t.snapshot() {
			s += "  " + Tuple{name, vals}.String() + "\n"
		}
	}
	return s
}

func sortedTableNames(m map[string]*table) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}
