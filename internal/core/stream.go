package core

// Streaming grounding pipeline with predicate pushdown.
//
// The seed grounder materialized, per solve, a merged symTuple row set for
// every predicate a rule body reads (rowsFor/cachedRows) plus a transient
// hash index over it per probed column set (cachedSymIndex): for the common
// case — a pure ground table with no symbolic tuples — that meant lifting
// every row into freshly allocated symTuples (and, when recording, a
// provenance cell per column) before a single join ran, only for most rows
// to be discarded by a compare.
//
// In streaming mode (Config.GroundMode, on by default) those intermediates
// disappear. A join over a ground predicate consumes the table directly:
// either the persistent arrival-ordered tableIndex (shared with the delta
// pipeline, pre-sized from the table count) or the memoized snapshotStable
// scan, both captured on the plan step while plans are built serially — so
// grounding workers then read them without synchronization. Rows flow
// through a pushdown prefilter (rowCmp) evaluated on the raw []colog.Value
// before any binding-frame extension, and only surviving rows are matched
// op-by-op (matchGroundRow), binding cells by value into the frame — no
// symTuple is ever allocated. Solver predicates stream their symbolic
// tuples first and their unshadowed materialized rows second, exactly the
// order the merged row set would have held them.
//
// Emission order and posted-constraint order are byte-identical to
// materialized grounding by construction:
//
//   - scans enumerate snapshotStable order, index buckets are seq-ordered
//     (see index.go), and symbolic tuples precede ground rows — the same
//     total order rowsFor produced;
//   - the prefilter only hoists compares that appear before the first op
//     that could post a constraint (an equality check against a
//     possibly-symbolic frame slot) or raise an error (an expression
//     argument), so a row the prefilter rejects is exactly a row the full
//     match would have rejected before any side effect;
//   - matchGroundRow runs the full op list in original order afterwards,
//     so surviving rows behave identically to a lifted matchSymRow.
//
// TestStreamingGroundEquivalence pins the equivalence under churn; the
// incremental/cluster/recovery gates pin the resulting derivation arrival
// order and solver-node traces.

import (
	"repro/internal/colog"
)

// ---------------------------------------------------------- pushdown ops

// rowCmpKind enumerates the prefilter compare forms.
type rowCmpKind int

const (
	cmpConst rowCmpKind = iota // row column vs constant
	cmpSlot                    // row column vs bound frame slot
	cmpCol                     // row column vs earlier column of the same row
)

// rowCmp is one pushed-down compare, evaluated against a raw table row
// before the binding frame is touched. For cmpSlot, slot is a frame slot;
// for cmpCol it is the earlier row column that first binds the variable.
type rowCmp struct {
	kind rowCmpKind
	col  int
	slot int
	val  colog.Value
}

// compilePushdown extracts the prefilter from a join's compiled arg ops:
// the side-effect-free compares that appear before the first op whose
// evaluation could post a constraint or raise an error. maybeSym reports
// whether a frame slot can hold a symbolic value when the join runs; a
// check against such a slot posts an equality constraint in matchSymRow /
// matchGroundRow and is therefore a barrier — it and everything after it
// stay in the full match, preserving the seed semantics that constraints
// posted before a later argument fails are kept. An expression argument is
// likewise a barrier (it errors when reached, and a hoisted later compare
// could mask that error by failing first). Pass maybeSym == nil for the
// delta pipeline, where frames are always ground and nothing posts.
func compilePushdown(ops []argOp, maybeSym func(slot int) bool) []rowCmp {
	var cmps []rowCmp
	boundAt := map[int]int{} // frame slot -> first binding column in this atom
	for i := range ops {
		op := &ops[i]
		switch op.kind {
		case argConst:
			cmps = append(cmps, rowCmp{kind: cmpConst, col: i, val: op.val})
		case argBind:
			if _, ok := boundAt[op.slot]; !ok {
				boundAt[op.slot] = i
			}
		case argCheck:
			if j, ok := boundAt[op.slot]; ok {
				// Repeated variable within the atom: both sides come from
				// this row, so the compare needs no frame at all.
				cmps = append(cmps, rowCmp{kind: cmpCol, col: i, slot: j})
				continue
			}
			if maybeSym != nil && maybeSym(op.slot) {
				return cmps // barrier: could post an equality constraint
			}
			cmps = append(cmps, rowCmp{kind: cmpSlot, col: i, slot: op.slot})
		case argExpr:
			return cmps // barrier: errors in the grounder when reached
		}
	}
	return cmps
}

// rowPrefilter evaluates the pushdown compares against a raw row under a
// ground (delta-pipeline) frame. True means the row must still go through
// the full match; false means the full match would provably reject it
// before any binding.
func (f *bindFrame) rowPrefilter(cmps []rowCmp, arity int, vals []colog.Value) bool {
	if len(vals) != arity {
		return true // let the full match report the arity mismatch
	}
	for i := range cmps {
		c := &cmps[i]
		switch c.kind {
		case cmpConst:
			if !c.val.Equal(vals[c.col]) {
				return false
			}
		case cmpSlot:
			if !f.vals[c.slot].Equal(vals[c.col]) {
				return false
			}
		case cmpCol:
			if !vals[c.slot].Equal(vals[c.col]) {
				return false
			}
		}
	}
	return true
}

// rowPrefilter is the grounder-frame variant. Slots the planner proved
// never-symbolic can still be checked defensively: a symbolic slot value
// falls through to the full match, which owns the constraint-posting
// semantics.
func (f *symFrame) rowPrefilter(cmps []rowCmp, arity int, vals []colog.Value) bool {
	if len(vals) != arity {
		return true
	}
	for i := range cmps {
		c := &cmps[i]
		switch c.kind {
		case cmpConst:
			if !c.val.Equal(vals[c.col]) {
				return false
			}
		case cmpSlot:
			gv := f.vals[c.slot]
			if gv.isSym() {
				continue
			}
			if !gv.val.Equal(vals[c.col]) {
				return false
			}
		case cmpCol:
			if !vals[c.slot].Equal(vals[c.col]) {
				return false
			}
		}
	}
	return true
}

// ------------------------------------------------- maybe-symbolic tracking

// termMaybeSym reports whether evaluating the term under the current frame
// could yield a symbolic value: true iff any variable it mentions might be
// symbolic.
func termMaybeSym(t colog.Term, maybe map[string]bool) bool {
	switch x := t.(type) {
	case *colog.VarTerm:
		return maybe[x.Name]
	case *colog.BinTerm:
		return termMaybeSym(x.L, maybe) || termMaybeSym(x.R, maybe)
	case *colog.NegTerm:
		return termMaybeSym(x.X, maybe)
	case *colog.NotTerm:
		return termMaybeSym(x.X, maybe)
	case *colog.AbsTerm:
		return termMaybeSym(x.X, maybe)
	case *colog.FuncTerm:
		for _, a := range x.Args {
			if termMaybeSym(a, maybe) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// ---------------------------------------------------- streaming row sources

// relSize returns the number of rows a join over the predicate enumerates,
// without materializing them: the table count for ground predicates, the
// symbolic tuples plus unshadowed materialized rows for solver predicates.
// It reproduces len(rowsFor(pred)) exactly, so streaming and materialized
// planning order joins identically.
func (g *grounder) relSize(pred string) (int, error) {
	sts, isSym := g.sym[pred]
	tbl := g.n.tables[pred]
	if !isSym {
		if tbl == nil {
			return 0, unknownPredErr(pred)
		}
		return tbl.size(), nil
	}
	if tbl == nil || tbl.size() == 0 {
		return len(sts), nil
	}
	rows, err := g.cachedGroundRows(pred)
	if err != nil {
		return 0, err
	}
	return len(sts) + len(rows), nil
}

// cachedGroundRows returns a solver predicate's materialized rows that are
// not shadowed by a symbolic tuple, in snapshotStable order — the ground
// tail of the merged row set, without lifting. Cached until the predicate's
// symbolic tuples change (invalidatePred).
func (g *grounder) cachedGroundRows(pred string) ([][]colog.Value, error) {
	if rows, ok := g.groundRowsCache[pred]; ok {
		return rows, nil
	}
	sts := g.sym[pred]
	tbl := g.n.tables[pred]
	var out [][]colog.Value
	if tbl != nil && tbl.size() > 0 {
		ti := g.n.res.Tables[pred]
		shadow := map[string]bool{}
		for _, st := range sts {
			if k, ok := symRegKey(ti, func(i int) (colog.Value, bool) {
				if st[i].isSym() {
					return colog.Value{}, false
				}
				return st[i].val, true
			}); ok {
				shadow[k] = true
			}
		}
		for _, vals := range tbl.snapshotStable() {
			k, _ := symRegKey(ti, func(i int) (colog.Value, bool) { return vals[i], true })
			if shadow[k] {
				continue
			}
			out = append(out, vals)
		}
	}
	if g.groundRowsCache == nil {
		g.groundRowsCache = map[string][][]colog.Value{}
	}
	g.groundRowsCache[pred] = out
	return out, nil
}

// provFor returns the provenance cells for one raw row of the step's join
// predicate, memoized per step so repeated probes of the same row reuse one
// allocation. The key is the full-row valsKey — the same key the lift path
// and the incremental patcher use, so refs recorded through streaming
// grounding are found by patchRun.
func (st *gstep) provFor(pred string, vals []colog.Value) []cellProv {
	st.provKeyBuf = appendValsKey(st.provKeyBuf[:0], vals)
	if provs, ok := st.provCache[string(st.provKeyBuf)]; ok {
		return provs
	}
	key := string(st.provKeyBuf)
	provs := make([]cellProv, len(vals))
	for j := range vals {
		provs[j] = cellProv{pred: pred, key: key, col: j}
	}
	if st.provCache == nil {
		st.provCache = map[string][]cellProv{}
	}
	st.provCache[key] = provs
	return provs
}

// ------------------------------------------------------ streaming execution

// streamJoin enumerates a streamed join step: symbolic tuples (if any)
// first via the symbolic matcher, then ground rows via the prefiltered
// ground matcher — probing the persistent index when the bound prefix is
// ground, falling back to the arrival-order scan otherwise.
func (g *grounder) streamJoin(run *groundRun, p *groundPlan, idx int, sink func(*symFrame) error) error {
	f := run.frame
	step := &p.steps[idx]
	if step.scan != nil {
		// Ground predicate: probe or scan the table directly.
		if step.gidx != nil {
			if key, ok := f.appendProbeKey(step.probeOps); ok {
				for _, r := range step.gidx.probeBytes(key) {
					if err := g.streamGroundRow(run, p, idx, r.vals, sink); err != nil {
						return err
					}
				}
				return nil
			}
		}
		for _, vals := range step.scan {
			if err := g.streamGroundRow(run, p, idx, vals, sink); err != nil {
				return err
			}
		}
		return nil
	}
	// Solver predicate: symbolic tuples first, then the unshadowed
	// materialized rows — the merged row set's order, streamed.
	for _, st := range step.symRows {
		m := f.mark()
		ok, err := g.matchSymRow(run, step.ops, st, p.label)
		if err != nil {
			return err
		}
		if ok {
			if err := g.execPlan(run, p, idx+1, sink); err != nil {
				return err
			}
		}
		f.undo(m)
	}
	for _, vals := range step.groundRows {
		if err := g.streamGroundRow(run, p, idx, vals, sink); err != nil {
			return err
		}
	}
	return nil
}

// streamGroundRow runs one raw table row through the step: pushdown
// prefilter, then the full op-by-op match, then the plan continuation.
func (g *grounder) streamGroundRow(run *groundRun, p *groundPlan, idx int, vals []colog.Value, sink func(*symFrame) error) error {
	step := &p.steps[idx]
	f := run.frame
	if !f.rowPrefilter(step.pre, len(step.ops), vals) {
		return nil
	}
	m := f.mark()
	ok, err := g.matchGroundRow(run, step, vals, p.label)
	if err != nil {
		return err
	}
	if ok {
		if err := g.execPlan(run, p, idx+1, sink); err != nil {
			return err
		}
	}
	f.undo(m)
	return nil
}

// matchGroundRow is matchSymRow specialized to a raw (unlifted) table row:
// cells bind by value into the frame, and provenance is attached only when
// recording — one memoized cellProv array per row instead of a lift per
// row per predicate. Semantics are identical: an equality check whose
// frame side is symbolic posts an equality constraint with the cell lifted
// to a constant, and constraints posted before a later argument fails are
// kept.
func (g *grounder) matchGroundRow(run *groundRun, step *gstep, vals []colog.Value, label string) (bool, error) {
	ops := step.ops
	if len(ops) != len(vals) {
		return false, nil
	}
	f := run.frame
	var provs []cellProv
	if g.recording {
		provs = step.provFor(step.atom.Pred, vals)
	}
	for i := range ops {
		op := &ops[i]
		switch op.kind {
		case argBind:
			gv := gval{val: vals[i]}
			if provs != nil {
				gv.prov = &provs[i]
			}
			f.bind(op.slot, gv)
		case argCheck:
			bound := f.vals[op.slot]
			if !bound.isSym() {
				if !bound.val.Equal(vals[i]) {
					return false, nil
				}
				continue
			}
			le, err := g.toExpr(bound, label, run.rec)
			if err != nil {
				return false, err
			}
			cell := gval{val: vals[i]}
			if provs != nil {
				cell.prov = &provs[i]
			}
			re, err := g.toExpr(cell, label, run.rec)
			if err != nil {
				return false, err
			}
			run.require(g.model.Eq(le, re))
		case argConst:
			if !op.val.Equal(vals[i]) {
				return false, nil
			}
		case argExpr:
			return false, everrf(label, "unsupported atom argument %s during grounding", op.term)
		}
	}
	return true, nil
}
