package core

import (
	"fmt"
	"testing"

	"repro/internal/solver"
)

// solveWithEngine grounds and solves the mini-ACloud COP under one solver
// configuration, on a node seeded with enough VMs that the node budget
// binds — the regime where any pruning divergence between engines would
// surface as a different incumbent.
func solveWithEngine(t *testing.T, cfg Config) *SolveResult {
	t.Helper()
	n := newTestNode(t, acloudMini, cfg)
	for h := 0; h < 3; h++ {
		n.Insert("host", sval(fmt.Sprintf("h%d", h)), ival(0), ival(0))
		n.Insert("hostMemThres", sval(fmt.Sprintf("h%d", h)), ival(1<<20))
	}
	for v := 0; v < 12; v++ {
		n.Insert("vm", sval(fmt.Sprintf("v%02d", v)), ival(int64(10+(v*13)%45)), ival(512))
	}
	res, err := n.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSolveEngineEquivalence pins the event engine to the legacy engine
// through the whole grounding pipeline: identical status, objective,
// node/failure counts and materialized assignments, with and without a
// binding node budget.
func TestSolveEngineEquivalence(t *testing.T) {
	for _, budget := range []int64{0, 1500} {
		base := Config{SolverPropagate: true, SolverMaxNodes: budget}
		evCfg, lgCfg := base, base
		evCfg.SolverEngine = "event"
		lgCfg.SolverEngine = "legacy"
		ev := solveWithEngine(t, evCfg)
		lg := solveWithEngine(t, lgCfg)
		label := fmt.Sprintf("budget=%d", budget)
		if ev.Status != lg.Status {
			t.Fatalf("%s: status event=%v legacy=%v", label, ev.Status, lg.Status)
		}
		if ev.Objective != lg.Objective {
			t.Fatalf("%s: objective event=%v legacy=%v", label, ev.Objective, lg.Objective)
		}
		if ev.Stats.Nodes != lg.Stats.Nodes || ev.Stats.Failures != lg.Stats.Failures {
			t.Fatalf("%s: trace diverged: event %d/%d, legacy %d/%d",
				label, ev.Stats.Nodes, ev.Stats.Failures, lg.Stats.Nodes, lg.Stats.Failures)
		}
		if len(ev.Assignments) != len(lg.Assignments) {
			t.Fatalf("%s: assignment counts differ: %d vs %d",
				label, len(ev.Assignments), len(lg.Assignments))
		}
		for i := range ev.Assignments {
			a, b := ev.Assignments[i], lg.Assignments[i]
			if a.Pred != b.Pred || len(a.Vals) != len(b.Vals) {
				t.Fatalf("%s: assignment %d shape differs", label, i)
			}
			for j := range a.Vals {
				if !a.Vals[j].Equal(b.Vals[j]) {
					t.Fatalf("%s: assignment %d differs: %v vs %v", label, i, a.Vals, b.Vals)
				}
			}
		}
	}
}

// TestSolveClassifiesShapes checks the grounder reports the propagator-shape
// classification: the ACloud COP grounds into linear constraints only
// (assignment counts and memory caps).
func TestSolveClassifiesShapes(t *testing.T) {
	res := solveWithEngine(t, Config{SolverPropagate: true})
	if res.Shapes == nil {
		t.Fatal("SolveResult.Shapes not populated")
	}
	if res.Shapes["linear"] == 0 {
		t.Fatalf("expected linear constraint shapes, got %v", res.Shapes)
	}
	for shape := range res.Shapes {
		switch shape {
		case "linear", "unary", "binary", "generic", "const":
		default:
			t.Fatalf("unknown shape %q in %v", shape, res.Shapes)
		}
	}
}

// TestSolveRestartConfig exercises the restart knobs through the grounder:
// the restarted solve must reach the same optimum as the plain one.
func TestSolveRestartConfig(t *testing.T) {
	plain := solveWithEngine(t, Config{SolverPropagate: true})
	restarted := solveWithEngine(t, Config{SolverPropagate: true, SolverRestarts: 3})
	fixpoint := solveWithEngine(t, Config{SolverPropagate: true, SolverFixpoint: true})
	if plain.Status != solver.StatusOptimal {
		t.Fatalf("plain solve status %v", plain.Status)
	}
	if restarted.Status != solver.StatusOptimal || restarted.Objective != plain.Objective {
		t.Fatalf("restarted: status %v objective %v, want optimal %v",
			restarted.Status, restarted.Objective, plain.Objective)
	}
	if fixpoint.Status != solver.StatusOptimal || fixpoint.Objective != plain.Objective {
		t.Fatalf("fixpoint: status %v objective %v, want optimal %v",
			fixpoint.Status, fixpoint.Objective, plain.Objective)
	}
	if fixpoint.Stats.Nodes > plain.Stats.Nodes {
		t.Fatalf("fixpoint explored more nodes (%d) than default (%d)",
			fixpoint.Stats.Nodes, plain.Stats.Nodes)
	}
}

// TestSolveRejectsUnknownEngine: a typo'd engine name must error instead of
// silently running the default engine (which would make ablations compare
// the event engine against itself).
func TestSolveRejectsUnknownEngine(t *testing.T) {
	n := newTestNode(t, acloudMini, Config{SolverEngine: "legaccy"})
	n.Insert("host", sval("h0"), ival(0), ival(0))
	n.Insert("hostMemThres", sval("h0"), ival(1<<20))
	n.Insert("vm", sval("v0"), ival(10), ival(512))
	if _, err := n.Solve(SolveOptions{}); err == nil {
		t.Fatal("unknown SolverEngine accepted")
	}
}
