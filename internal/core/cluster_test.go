package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
)

const clusterSrc = `
d0 remoteSum(@X,SUM<R>) <- link(@Y,X), data(@Y,R), probe(@X).
r1 echo(@Y,R) <- link(@X,Y), data(@X,R).
`

func TestSimClusterDistributedAggregation(t *testing.T) {
	res := mustAnalyze(t, clusterSrc, nil)
	c, err := NewSimCluster([]string{"a", "b", "c"}, res, Config{}, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// b and c feed a.
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(c.Insert("probe", sval("a")))
	must(c.Insert("link", sval("b"), sval("a")))
	must(c.Insert("link", sval("c"), sval("a")))
	must(c.Insert("data", sval("b"), ival(4)))
	must(c.Insert("data", sval("c"), ival(6)))
	c.Settle()
	if !c.Node("a").Contains("remoteSum", sval("a"), ival(10)) {
		t.Fatalf("aggregate missing:\n%s", c.Node("a").Dump())
	}
	// Retraction over the simulated network.
	must(c.Delete("data", sval("c"), ival(6)))
	c.Settle()
	if !c.Node("a").Contains("remoteSum", sval("a"), ival(4)) {
		t.Fatalf("aggregate not maintained after remote delete:\n%s", c.Node("a").Dump())
	}
}

func TestClusterRoutesByLocation(t *testing.T) {
	res := mustAnalyze(t, clusterSrc, nil)
	c, err := NewSimCluster([]string{"a", "b"}, res, Config{}, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("data", sval("b"), ival(1)); err != nil {
		t.Fatal(err)
	}
	if len(c.Node("b").Rows("data")) != 1 || len(c.Node("a").Rows("data")) != 0 {
		t.Fatal("fact routed to wrong node")
	}
	if err := c.Insert("data", sval("nope"), ival(1)); err == nil {
		t.Fatal("expected error for unknown location")
	}
}

func TestClusterErrors(t *testing.T) {
	res := mustAnalyze(t, clusterSrc, nil)
	if _, err := NewSimCluster([]string{"a", "a"}, res, Config{}, 0); err == nil {
		t.Fatal("duplicate address accepted")
	}
	c, err := NewSimCluster([]string{"a"}, res, Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("nosuch", sval("a")); err == nil {
		t.Fatal("unknown predicate accepted")
	}
	if got := c.Addrs(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("Addrs = %v", got)
	}
}

func TestUDPClusterEcho(t *testing.T) {
	res := mustAnalyze(t, clusterSrc, nil)
	c, err := NewUDPCluster([]string{"u1", "u2"}, res, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Insert("link", sval("u1"), sval("u2")); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert("data", sval("u1"), ival(9)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if c.Node("u2").Contains("echo", sval("u2"), ival(9)) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("echo tuple never arrived over UDP:\n%s", c.Node("u2").Dump())
}

func TestClusterRowsGathers(t *testing.T) {
	res := mustAnalyze(t, clusterSrc, nil)
	c, err := NewSimCluster([]string{"a", "b"}, res, Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Insert("data", sval("a"), ival(1))
	c.Insert("data", sval("b"), ival(2))
	all := c.Rows("data")
	if len(all) != 2 || len(all["a"]) != 1 || len(all["b"]) != 1 {
		t.Fatalf("Rows = %v", all)
	}
}

// TestHoldOutboxBatchesPerDestination: with outbox holding and
// Config.BatchDeltas, all deltas one node ships during an epoch leave as a
// single frame per destination, and the receiver ends in the same state as
// an unbatched run.
func TestHoldOutboxBatchesPerDestination(t *testing.T) {
	res := mustAnalyze(t, clusterSrc, nil)
	run := func(batch bool) (transport.Stats, *Cluster) {
		t.Helper()
		c, err := NewSimCluster([]string{"a", "b"}, res, Config{BatchDeltas: batch}, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		must := func(err error) {
			t.Helper()
			if err != nil {
				t.Fatal(err)
			}
		}
		must(c.Insert("link", sval("a"), sval("b")))
		c.Settle()
		a := c.Node("a")
		a.HoldOutbox(true)
		for i := int64(0); i < 5; i++ {
			must(a.Insert("data", sval("a"), ival(i)))
		}
		a.HoldOutbox(false)
		must(a.FlushOutbox())
		c.Settle()
		return c.Transport().NodeStats("a"), c
	}
	plain, cp := run(false)
	batched, cb := run(true)
	// Each insert ships two deltas to b (the d0 localization table and the
	// r1 echo); held and batched they leave as one frame.
	if plain.MsgsSent != 10 || batched.MsgsSent != 1 {
		t.Fatalf("msgs sent: plain=%d batched=%d, want 10/1", plain.MsgsSent, batched.MsgsSent)
	}
	if batched.BytesSent >= plain.BytesSent {
		t.Fatalf("batching grew bytes: %d >= %d", batched.BytesSent, plain.BytesSent)
	}
	// Identical receiver state either way.
	if got, want := len(cb.Node("b").Rows("echo")), len(cp.Node("b").Rows("echo")); got != want || got != 5 {
		t.Fatalf("echo rows: batched=%d plain=%d, want 5", got, want)
	}
}

// TestConcurrentInsertsUDP hammers a two-node UDP cluster from several
// goroutines; the per-node mutex must keep every table consistent.
func TestConcurrentInsertsUDP(t *testing.T) {
	res := mustAnalyze(t, clusterSrc, nil)
	c, err := NewUDPCluster([]string{"ca", "cb"}, res, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Insert("link", sval("ca"), sval("cb"))
	var wg sync.WaitGroup
	const workers, perWorker = 4, 25
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := c.Node("ca").Insert("data", sval("ca"), ival(int64(w*1000+i))); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := len(c.Node("ca").Rows("data")); got != workers*perWorker {
		t.Fatalf("data rows = %d, want %d", got, workers*perWorker)
	}
	// Echo rule ships each data row to cb; wait for delivery.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if len(c.Node("cb").Rows("echo")) == workers*perWorker {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("echo rows = %d, want %d", len(c.Node("cb").Rows("echo")), workers*perWorker)
}
