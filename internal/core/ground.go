package core

import (
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/colog"
	"repro/internal/solver"
)

// gval is a grounding-time value: either a ground constant or a symbolic
// solver expression (the runtime representation of a solver attribute).
type gval struct {
	val colog.Value
	sym *solver.Expr
}

func (g gval) isSym() bool { return g.sym != nil }

func (g gval) String() string {
	if g.isSym() {
		return g.sym.String()
	}
	return g.val.String()
}

// key panics on symbolic values; callers must only key ground attributes.
func (g gval) key() string {
	if g.isSym() {
		panic("core: keying a symbolic value")
	}
	return g.val.Key()
}

// symTuple is a row of a solver table during grounding: ground values at
// regular attribute positions, expressions at solver attribute positions.
type symTuple []gval

// varInstance records one decision variable created from a var declaration,
// for hinting and materialization.
type varInstance struct {
	pred string
	vals []gval // the declared tuple; exactly the solver positions are symbolic
	v    *solver.Var
}

// grounder builds one COP from the node's current database state: it
// evaluates solver derivation rules bottom-up over symbolic tuples,
// translating selections and aggregations over solver attributes into
// constraints (paper sections 5.3-5.4).
type grounder struct {
	n     *Node
	model *solver.Model
	sym   map[string][]symTuple
	insts []varInstance
	genv  map[string]colog.Value // goal bindings after grounding
}

// SolveOptions tune one COP execution.
type SolveOptions struct {
	// MaxTime overrides Config.SolverMaxTime when positive.
	MaxTime time.Duration
	// Hint supplies a warm-start value per declared variable tuple: pred is
	// the var table, vals the declared arguments with solver positions
	// holding zero values. Returning ok=false leaves the variable unhinted.
	Hint func(pred string, vals []colog.Value) (int64, bool)
	// FirstSolution stops at the first incumbent (with Hint: reproduces the
	// warm start exactly when feasible).
	FirstSolution bool
	// ValueOrder optionally reorders candidate values per variable.
	ValueOrder func(v *solver.Var, vals []int64) []int64
}

// Assignment is one concrete solver-variable tuple in a solve result.
type Assignment struct {
	Pred string
	Vals []colog.Value
}

// SolveResult reports the outcome of one COP execution.
type SolveResult struct {
	Status      solver.Status
	Objective   float64
	HasGoal     bool
	Assignments []Assignment
	NumVars     int
	NumCons     int
	Stats       solver.Stats
}

// Feasible reports whether the result carries a usable assignment.
func (r *SolveResult) Feasible() bool {
	return r.Status == solver.StatusOptimal || r.Status == solver.StatusFeasible
}

// Solve grounds the program's solver rules against the current database,
// runs the constraint solver, and materializes the optimization output
// (goal and var tables) back into the engine, triggering downstream rule
// reevaluation.
func (n *Node) Solve(opts SolveOptions) (*SolveResult, error) {
	n.mu.Lock()
	res, err := n.solveLocked(opts)
	out := n.takeOutbox()
	n.mu.Unlock()
	if ferr := n.flush(out); err == nil && ferr != nil {
		err = ferr
	}
	return res, err
}

func (n *Node) solveLocked(opts SolveOptions) (*SolveResult, error) {
	n.stats.Solves++
	g := &grounder{
		n:     n,
		model: solver.NewModel(),
		sym:   map[string][]symTuple{},
	}
	if err := g.createVars(); err != nil {
		return nil, err
	}
	res := &SolveResult{}
	if g.model.NumVars() == 0 {
		// Nothing to optimize (e.g. no rows in the forall tables).
		res.Status = solver.StatusOptimal
		n.LastSolveResult = res
		return res, nil
	}
	if err := g.deriveSolverRules(); err != nil {
		return nil, err
	}
	if err := g.applyConstraintRules(); err != nil {
		return nil, err
	}
	if err := g.setGoal(); err != nil {
		return nil, err
	}

	sopts := solver.Options{
		MaxTime:       n.cfg.SolverMaxTime,
		MaxNodes:      n.cfg.SolverMaxNodes,
		Propagate:     n.cfg.SolverPropagate,
		FirstSolution: opts.FirstSolution,
	}
	if opts.MaxTime > 0 {
		sopts.MaxTime = opts.MaxTime
	}
	if opts.ValueOrder != nil {
		sopts.ValueOrder = opts.ValueOrder
	}
	if opts.Hint != nil {
		sopts.Hints = map[int]int64{}
		for _, inst := range g.insts {
			vals := make([]colog.Value, len(inst.vals))
			for i, gv := range inst.vals {
				if gv.isSym() {
					vals[i] = colog.IntVal(0)
				} else {
					vals[i] = gv.val
				}
			}
			if h, ok := opts.Hint(inst.pred, vals); ok {
				sopts.Hints[inst.v.ID] = h
			}
		}
	}
	sol := g.model.Solve(sopts)
	res.Status = sol.Status
	res.NumVars = g.model.NumVars()
	res.NumCons = g.model.NumConstraints()
	res.Stats = sol.Stats

	if !sol.Feasible() {
		n.LastSolveResult = res
		return res, nil
	}
	res.Objective = sol.Objective
	if obj, _ := g.model.Objective(); obj != nil {
		res.HasGoal = true
	}
	// Concrete assignments.
	for _, inst := range g.insts {
		vals := make([]colog.Value, len(inst.vals))
		for i, gv := range inst.vals {
			if gv.isSym() {
				vals[i] = colog.IntVal(sol.Value(inst.v))
			} else {
				vals[i] = gv.val
			}
		}
		res.Assignments = append(res.Assignments, Assignment{Pred: inst.pred, Vals: vals})
	}
	if err := n.materialize(g, res); err != nil {
		return res, err
	}
	n.LastSolveResult = res
	return res, nil
}

// materialize writes the optimization output back into the engine: var
// tables receive the concrete assignments, the goal table the objective
// value. Previous materializations of keyless tables are retracted first so
// repeated solves replace rather than accumulate.
func (n *Node) materialize(g *grounder, res *SolveResult) error {
	byPred := map[string][]Tuple{}
	for _, a := range res.Assignments {
		byPred[a.Pred] = append(byPred[a.Pred], Tuple{a.Pred, a.Vals})
	}
	// Goal tuple.
	var goalTuple *Tuple
	if goal := n.res.Program.Goal; goal != nil && goal.Sense != colog.GoalSatisfy && res.HasGoal {
		vals := make([]colog.Value, len(goal.Atom.Args))
		okAll := true
		for i, arg := range goal.Atom.Args {
			switch t := arg.(type) {
			case *colog.VarTerm:
				if t.Name == goal.VarName {
					vals[i] = colog.FloatVal(res.Objective)
				} else if t.Loc {
					vals[i] = colog.StringVal(n.Addr)
				} else if v, ok := g.genv[t.Name]; ok {
					vals[i] = v
				} else {
					okAll = false
				}
			case *colog.ConstTerm:
				vals[i] = t.Val
			default:
				okAll = false
			}
		}
		if okAll {
			t := Tuple{goal.Atom.Pred, vals}
			goalTuple = &t
		}
	}

	for pred, tuples := range byPred {
		tbl := n.tables[pred]
		// Unkeyed tables: retract the previous solve's output so repeated
		// solves replace it. Keyed tables (e.g. the wireless assign table,
		// keyed on the link) replace per key on insert and accumulate
		// results across per-link negotiations.
		if tbl != nil && !tbl.event && tbl.keyCols == nil {
			for _, old := range n.lastMaterialized[pred] {
				n.enqueue(delta{old, -1, false})
			}
		}
		for _, t := range tuples {
			n.enqueue(delta{t, +1, false})
		}
		n.lastMaterialized[pred] = tuples
	}
	if goalTuple != nil {
		tbl := n.tables[goalTuple.Pred]
		if tbl != nil && !tbl.event {
			for _, old := range n.lastMaterialized[goalTuple.Pred] {
				n.enqueue(delta{old, -1, false})
			}
		}
		n.enqueue(delta{*goalTuple, +1, false})
		n.lastMaterialized[goalTuple.Pred] = []Tuple{*goalTuple}
	}
	return n.drain()
}

// createVars instantiates decision variables per var declaration: one
// variable for each row of the forall table (paper section 4.2).
func (g *grounder) createVars() error {
	for _, vd := range g.n.res.Program.Vars {
		forallRows := g.n.tables[vd.ForAll.Pred]
		if forallRows == nil {
			return everrf("var", "forall table %s unknown", vd.ForAll.Pred)
		}
		dom, err := g.domainFor(vd)
		if err != nil {
			return err
		}
		for _, rowVals := range forallRows.snapshot() {
			env := map[string]colog.Value{}
			if !matchAtom(vd.ForAll, rowVals, env) {
				continue
			}
			st := make(symTuple, len(vd.Decl.Args))
			var inst varInstance
			inst.pred = vd.Decl.Pred
			for i, arg := range vd.Decl.Args {
				v := arg.(*colog.VarTerm)
				if bound, ok := env[v.Name]; ok {
					st[i] = gval{val: bound}
					continue
				}
				name := fmt.Sprintf("%s[%s]#%d", vd.Decl.Pred, valsKey(rowVals), i)
				sv := g.model.VarWithDomain(name, dom)
				st[i] = gval{sym: g.model.VarExpr(sv)}
				inst.v = sv
			}
			inst.vals = st
			g.insts = append(g.insts, inst)
			g.sym[vd.Decl.Pred] = append(g.sym[vd.Decl.Pred], st)
		}
	}
	return nil
}

func (g *grounder) domainFor(vd *colog.VarDecl) (solver.Domain, error) {
	d := vd.Domain
	if d == nil {
		return solver.BinaryDomain(), nil
	}
	switch {
	case d.FromTable != "":
		tbl := g.n.tables[d.FromTable]
		if tbl == nil {
			return solver.Domain{}, everrf("var", "domain table %s unknown", d.FromTable)
		}
		var vals []int64
		for _, rowVals := range tbl.snapshot() {
			last := rowVals[len(rowVals)-1]
			if last.Kind != colog.KindInt {
				return solver.Domain{}, everrf("var", "domain table %s has non-integer value %s", d.FromTable, last)
			}
			vals = append(vals, last.I)
		}
		if len(vals) == 0 {
			return solver.Domain{}, everrf("var", "domain table %s is empty", d.FromTable)
		}
		return solver.NewDomain(vals...), nil
	case d.Explicit != nil:
		return solver.NewDomain(d.Explicit...), nil
	default:
		return solver.NewRangeDomain(d.Lo, d.Hi), nil
	}
}

// deriveSolverRules evaluates solver derivation rules bottom-up in
// dependency order, building symbolic tuples and definitional constraints.
func (g *grounder) deriveSolverRules() error {
	for _, ri := range g.n.res.SolverOrder {
		rule := g.n.res.Program.Rules[ri]
		if err := g.evalSolverRule(rule); err != nil {
			return err
		}
	}
	return nil
}

// evalSolverRule grounds one solver derivation rule: joins over symbolic
// and regular tables, evaluates expression literals symbolically, and emits
// head symTuples (aggregating when the head has an aggregate term).
func (g *grounder) evalSolverRule(rule *colog.Rule) error {
	matches, err := g.matchBody(rule, nil)
	if err != nil {
		return err
	}
	if rule.Head.HasAggregate() {
		return g.emitAggregateHead(rule, matches)
	}
	for _, env := range matches {
		st := make(symTuple, len(rule.Head.Args))
		for i, arg := range rule.Head.Args {
			gv, err := g.evalSym(arg, env, ruleName(rule))
			if err != nil {
				return err
			}
			st[i] = gv
		}
		g.sym[rule.Head.Pred] = append(g.sym[rule.Head.Pred], st)
	}
	return nil
}

// senv is a symbolic binding environment.
type senv map[string]gval

func cloneSenv(e senv) senv {
	out := make(senv, len(e)+4)
	for k, v := range e {
		out[k] = v
	}
	return out
}

// matchBody enumerates all bindings of a rule body over the node's regular
// tables and the grounder's symbolic tables. Expression literals either
// filter (ground), bind (definitional equality), or — when symbolic — post
// solver constraints scoped to the current binding.
func (g *grounder) matchBody(rule *colog.Rule, seed senv) ([]senv, error) {
	type lit struct {
		l    colog.Literal
		done bool
	}
	lits := make([]lit, len(rule.Body))
	for i, l := range rule.Body {
		lits[i] = lit{l: l}
	}
	var results []senv
	label := ruleName(rule)

	var rec func(env senv, remaining int) error
	rec = func(env senv, remaining int) error {
		if remaining == 0 {
			results = append(results, env)
			return nil
		}
		// Pick the next processable literal: ready expressions first, then
		// any unprocessed atom.
		pick := -1
		for i := range lits {
			if lits[i].done {
				continue
			}
			switch x := lits[i].l.(type) {
			case *colog.CondLit:
				if g.senvBound(x.Expr, env) || g.bindableSym(x.Expr, env) {
					pick = i
				}
			case *colog.AssignLit:
				if g.senvBound(x.Expr, env) {
					pick = i
				}
			}
			if pick >= 0 {
				break
			}
		}
		if pick < 0 {
			for i := range lits {
				if !lits[i].done {
					if _, ok := lits[i].l.(*colog.AtomLit); ok {
						pick = i
						break
					}
				}
			}
		}
		if pick < 0 {
			return everrf(label, "cannot order body literals during grounding")
		}
		lits[pick].done = true
		defer func() { lits[pick].done = false }()

		switch x := lits[pick].l.(type) {
		case *colog.AtomLit:
			rows, err := g.rowsFor(x.Atom.Pred)
			if err != nil {
				return everrf(label, "%v", err)
			}
			for _, st := range rows {
				env2 := cloneSenv(env)
				ok, err := g.matchSymAtom(x.Atom, st, env2, label)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
				if err := rec(env2, remaining-1); err != nil {
					return err
				}
			}
			return nil
		case *colog.CondLit:
			return g.processCond(rule, x.Expr, env, label, func(env2 senv) error {
				return rec(env2, remaining-1)
			})
		case *colog.AssignLit:
			gv, err := g.evalSym(x.Expr, env, label)
			if err != nil {
				return err
			}
			env2 := cloneSenv(env)
			env2[x.Var] = gv
			return rec(env2, remaining-1)
		}
		return everrf(label, "unknown literal kind")
	}
	base := senv{}
	for k, v := range seed {
		base[k] = v
	}
	if err := rec(base, len(lits)); err != nil {
		return nil, err
	}
	return results, nil
}

// rowsFor returns the rows of a predicate for grounding. For solver tables
// the symbolic tuples come first; materialized rows from previous solves
// whose regular-attribute key does not collide with a symbolic tuple are
// appended as ground rows. This implements the paper's distributed channel
// selection (A.3), where the assign table holds both the variable of the
// link under negotiation and the concrete assignments collected from
// neighbors.
func (g *grounder) rowsFor(pred string) ([]symTuple, error) {
	tbl := g.n.tables[pred]
	sts, isSym := g.sym[pred]
	if !isSym {
		if tbl == nil {
			return nil, fmt.Errorf("unknown predicate %s", pred)
		}
		rows := tbl.snapshot()
		out := make([]symTuple, len(rows))
		for i, vals := range rows {
			out[i] = liftRow(vals)
		}
		return out, nil
	}
	if tbl == nil || tbl.size() == 0 {
		return sts, nil
	}
	// Merge in materialized rows not shadowed by a symbolic tuple.
	ti := g.n.res.Tables[pred]
	regKey := func(get func(i int) (colog.Value, bool)) (string, bool) {
		k := ""
		for i := 0; i < ti.Arity; i++ {
			if ti.SolverAttrs[i] {
				continue
			}
			v, ok := get(i)
			if !ok {
				return "", false
			}
			k += v.Key() + "|"
		}
		return k, true
	}
	shadow := map[string]bool{}
	for _, st := range sts {
		if k, ok := regKey(func(i int) (colog.Value, bool) {
			if st[i].isSym() {
				return colog.Value{}, false
			}
			return st[i].val, true
		}); ok {
			shadow[k] = true
		}
	}
	out := append([]symTuple(nil), sts...)
	for _, vals := range tbl.snapshot() {
		k, _ := regKey(func(i int) (colog.Value, bool) { return vals[i], true })
		if shadow[k] {
			continue
		}
		out = append(out, liftRow(vals))
	}
	return out, nil
}

func liftRow(vals []colog.Value) symTuple {
	st := make(symTuple, len(vals))
	for j, v := range vals {
		st[j] = gval{val: v}
	}
	return st
}

// matchSymAtom unifies an atom against a symbolic tuple. Ground-vs-ground
// mismatches fail the match; binding a variable to a symbolic value is
// allowed; comparing two symbolic values posts an equality constraint (the
// wireless channel-symmetry idiom assign(X,Y,C) -> assign(Y,X,C)).
func (g *grounder) matchSymAtom(a *colog.Atom, st symTuple, env senv, label string) (bool, error) {
	if len(a.Args) != len(st) {
		return false, nil
	}
	for i, arg := range a.Args {
		switch t := arg.(type) {
		case *colog.VarTerm:
			bound, ok := env[t.Name]
			if !ok {
				env[t.Name] = st[i]
				continue
			}
			switch {
			case !bound.isSym() && !st[i].isSym():
				if !bound.val.Equal(st[i].val) {
					return false, nil
				}
			default:
				// Symbolic on either side: require equality in the model.
				le, err := g.toExpr(bound, label)
				if err != nil {
					return false, err
				}
				re, err := g.toExpr(st[i], label)
				if err != nil {
					return false, err
				}
				g.model.Require(g.model.Eq(le, re))
			}
		case *colog.ConstTerm:
			if st[i].isSym() {
				e, err := g.toExpr(st[i], label)
				if err != nil {
					return false, err
				}
				g.model.Require(g.model.Eq(e, g.model.Const(t.Val.Num())))
				continue
			}
			if !t.Val.Equal(st[i].val) {
				return false, nil
			}
		default:
			return false, everrf(label, "unsupported atom argument %s during grounding", arg)
		}
	}
	return true, nil
}

// processCond handles one expression literal during grounding:
//   - fully ground: evaluate and filter;
//   - definitional (one unbound variable): bind it, possibly symbolically,
//     including the reified (C==1)==(bool) idiom;
//   - otherwise symbolic: post as a solver constraint for derivation rules
//     (selection-to-constraint compilation, paper section 5.3).
func (g *grounder) processCond(rule *colog.Rule, cond colog.Term, env senv, label string, cont func(senv) error) error {
	if g.senvBound(cond, env) {
		gv, err := g.evalSym(cond, env, label)
		if err != nil {
			return err
		}
		if !gv.isSym() {
			if gv.val.Kind != colog.KindBool {
				return everrf(label, "condition %s evaluated to non-boolean %s", cond, gv.val)
			}
			if !gv.val.B {
				return nil // filtered out
			}
			return cont(env)
		}
		// Symbolic selection: becomes a solver constraint scoped to this
		// binding.
		if !gv.sym.IsBool() {
			return everrf(label, "condition %s is symbolic but not boolean", cond)
		}
		g.model.Require(gv.sym)
		return cont(env)
	}
	// Try definitional bindings.
	if name, rhs, k, reified, ok := g.splitBindable(cond, env); ok {
		gv, err := g.evalSym(rhs, env, label)
		if err != nil {
			return err
		}
		env2 := cloneSenv(env)
		if !reified {
			env2[name] = gv
			return cont(env2)
		}
		// Reified: (C==k)==(bool-expr)  =>  C := ITE(bool, k, other).
		be, err := g.toExpr(gv, label)
		if err != nil {
			return err
		}
		if !be.IsBool() {
			return everrf(label, "reified binding %s: right side is not boolean", cond)
		}
		other := int64(0)
		if k == 0 {
			other = 1
		}
		ite := g.model.ITE(be, g.model.ConstInt(k), g.model.ConstInt(other))
		env2[name] = gval{sym: ite}
		return cont(env2)
	}
	return everrf(label, "condition %s has multiple unbound variables", cond)
}

// splitBindable recognizes V==expr / expr==V definitional equalities and the
// reified (V==k)==(expr) form, returning the variable to bind, the defining
// term, and whether the binding is reified with constant k.
func (g *grounder) splitBindable(cond colog.Term, env senv) (name string, rhs colog.Term, k int64, reified, ok bool) {
	bt, isBin := cond.(*colog.BinTerm)
	if !isBin || bt.Op != colog.OpEq {
		return "", nil, 0, false, false
	}
	unbound := func(t colog.Term) (string, bool) {
		v, isVar := t.(*colog.VarTerm)
		if !isVar {
			return "", false
		}
		_, bound := env[v.Name]
		return v.Name, !bound
	}
	if n, u := unbound(bt.L); u && g.senvBound(bt.R, env) {
		return n, bt.R, 0, false, true
	}
	if n, u := unbound(bt.R); u && g.senvBound(bt.L, env) {
		return n, bt.L, 0, false, true
	}
	// Reified orientation: (V==k)==(expr) or (expr)==(V==k).
	tryReified := func(side, other colog.Term) (string, colog.Term, int64, bool, bool) {
		inner, isBin := side.(*colog.BinTerm)
		if !isBin || inner.Op != colog.OpEq {
			return "", nil, 0, false, false
		}
		var vName string
		var constSide colog.Term
		if n, u := unbound(inner.L); u {
			vName, constSide = n, inner.R
		} else if n, u := unbound(inner.R); u {
			vName, constSide = n, inner.L
		} else {
			return "", nil, 0, false, false
		}
		c, isConst := constSide.(*colog.ConstTerm)
		if !isConst || c.Val.Kind != colog.KindInt {
			return "", nil, 0, false, false
		}
		if !g.senvBound(other, env) {
			return "", nil, 0, false, false
		}
		return vName, other, c.Val.I, true, true
	}
	if n, r, kk, re, ok2 := tryReified(bt.L, bt.R); ok2 {
		return n, r, kk, re, ok2
	}
	return tryReified(bt.R, bt.L)
}

func (g *grounder) senvBound(t colog.Term, env senv) bool {
	switch x := t.(type) {
	case *colog.VarTerm:
		_, ok := env[x.Name]
		return ok
	case *colog.BinTerm:
		return g.senvBound(x.L, env) && g.senvBound(x.R, env)
	case *colog.NegTerm:
		return g.senvBound(x.X, env)
	case *colog.NotTerm:
		return g.senvBound(x.X, env)
	case *colog.AbsTerm:
		return g.senvBound(x.X, env)
	case *colog.FuncTerm:
		for _, a := range x.Args {
			if !g.senvBound(a, env) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// bindableSym reports whether a condition can bind a variable right now.
func (g *grounder) bindableSym(t colog.Term, env senv) bool {
	_, _, _, _, ok := g.splitBindable(t, env)
	return ok
}

// toExpr lifts a gval into a solver expression.
func (g *grounder) toExpr(gv gval, label string) (*solver.Expr, error) {
	if gv.isSym() {
		return gv.sym, nil
	}
	if !gv.val.IsNumeric() && gv.val.Kind != colog.KindBool {
		return nil, everrf(label, "cannot lift %s into a solver expression", gv.val)
	}
	if gv.val.Kind == colog.KindBool {
		return g.model.Bool(gv.val.B), nil
	}
	return g.model.Const(gv.val.Num()), nil
}

// evalSym evaluates a term under a symbolic environment: ground subterms
// fold to constants, symbolic subterms build solver expression nodes.
func (g *grounder) evalSym(t colog.Term, env senv, label string) (gval, error) {
	switch x := t.(type) {
	case *colog.ConstTerm:
		return gval{val: x.Val}, nil
	case *colog.VarTerm:
		gv, ok := env[x.Name]
		if !ok {
			return gval{}, everrf(label, "unbound variable %s during grounding", x.Name)
		}
		return gv, nil
	case *colog.ParamTerm:
		return gval{}, everrf(label, "unbound parameter %s (bind via Config.Params)", x.Name)
	case *colog.BinTerm:
		l, err := g.evalSym(x.L, env, label)
		if err != nil {
			return gval{}, err
		}
		r, err := g.evalSym(x.R, env, label)
		if err != nil {
			return gval{}, err
		}
		if !l.isSym() && !r.isSym() {
			v, err := applyBin(x.Op, l.val, r.val)
			if err != nil {
				return gval{}, everrf(label, "%v", err)
			}
			return gval{val: v}, nil
		}
		le, err := g.toExpr(l, label)
		if err != nil {
			return gval{}, err
		}
		re, err := g.toExpr(r, label)
		if err != nil {
			return gval{}, err
		}
		return g.applySymBin(x.Op, le, re, label)
	case *colog.NegTerm:
		v, err := g.evalSym(x.X, env, label)
		if err != nil {
			return gval{}, err
		}
		if !v.isSym() {
			nv, err := applyNeg(v.val)
			if err != nil {
				return gval{}, everrf(label, "%v", err)
			}
			return gval{val: nv}, nil
		}
		return gval{sym: g.model.Neg(v.sym)}, nil
	case *colog.NotTerm:
		v, err := g.evalSym(x.X, env, label)
		if err != nil {
			return gval{}, err
		}
		if !v.isSym() {
			nv, err := applyNot(v.val)
			if err != nil {
				return gval{}, everrf(label, "%v", err)
			}
			return gval{val: nv}, nil
		}
		return gval{sym: g.model.Not(v.sym)}, nil
	case *colog.AbsTerm:
		v, err := g.evalSym(x.X, env, label)
		if err != nil {
			return gval{}, err
		}
		if !v.isSym() {
			av, err := applyAbs(v.val)
			if err != nil {
				return gval{}, everrf(label, "%v", err)
			}
			return gval{val: av}, nil
		}
		return gval{sym: g.model.Abs(v.sym)}, nil
	case *colog.FuncTerm:
		args := make([]colog.Value, len(x.Args))
		for i, a := range x.Args {
			gv, err := g.evalSym(a, env, label)
			if err != nil {
				return gval{}, err
			}
			if gv.isSym() {
				return gval{}, everrf(label, "function %s over symbolic arguments is not supported", x.Name)
			}
			args[i] = gv.val
		}
		v, err := applyFunc(x.Name, args)
		if err != nil {
			return gval{}, everrf(label, "%v", err)
		}
		return gval{val: v}, nil
	}
	return gval{}, everrf(label, "unsupported term %T during grounding", t)
}

func (g *grounder) applySymBin(op colog.BinOp, l, r *solver.Expr, label string) (gval, error) {
	m := g.model
	switch op {
	case colog.OpAdd:
		return gval{sym: m.Add(l, r)}, nil
	case colog.OpSub:
		return gval{sym: m.Sub(l, r)}, nil
	case colog.OpMul:
		return gval{sym: m.Mul(l, r)}, nil
	case colog.OpDiv:
		return gval{sym: m.Div(l, r)}, nil
	case colog.OpEq:
		return gval{sym: m.Eq(l, r)}, nil
	case colog.OpNe:
		return gval{sym: m.Ne(l, r)}, nil
	case colog.OpLt:
		return gval{sym: m.Lt(l, r)}, nil
	case colog.OpLe:
		return gval{sym: m.Le(l, r)}, nil
	case colog.OpGt:
		return gval{sym: m.Gt(l, r)}, nil
	case colog.OpGe:
		return gval{sym: m.Ge(l, r)}, nil
	case colog.OpAnd:
		return gval{sym: m.And(l, r)}, nil
	case colog.OpOr:
		return gval{sym: m.Or(l, r)}, nil
	}
	return gval{}, everrf(label, "unsupported symbolic operator %s", op)
}

// emitAggregateHead groups matches by the ground head attributes and builds
// one aggregate expression per group (SUM -> solver.Sum, STDEV ->
// solver.StdDev, ...), the compilation of aggregations over solver
// attributes described in section 5.3.
func (g *grounder) emitAggregateHead(rule *colog.Rule, matches []senv) error {
	label := ruleName(rule)
	aggPos := -1
	var aggTerm *colog.AggTerm
	for i, arg := range rule.Head.Args {
		if at, ok := arg.(*colog.AggTerm); ok {
			if aggPos >= 0 {
				return everrf(label, "multiple aggregates in head")
			}
			aggPos, aggTerm = i, at
		}
	}
	type group struct {
		vals  []gval
		items []gval
	}
	groups := map[string]*group{}
	var order []string
	for _, env := range matches {
		headVals := make([]gval, len(rule.Head.Args))
		keyParts := ""
		for i, arg := range rule.Head.Args {
			if i == aggPos {
				continue
			}
			gv, err := g.evalSym(arg, env, label)
			if err != nil {
				return err
			}
			if gv.isSym() {
				return everrf(label, "aggregate group-by attribute %d is symbolic", i)
			}
			headVals[i] = gv
			keyParts += gv.key() + "|"
		}
		item, ok := env[aggTerm.Over]
		if !ok {
			return everrf(label, "aggregate variable %s unbound", aggTerm.Over)
		}
		grp := groups[keyParts]
		if grp == nil {
			grp = &group{vals: headVals}
			groups[keyParts] = grp
			order = append(order, keyParts)
		}
		grp.items = append(grp.items, item)
	}
	for _, k := range order {
		grp := groups[k]
		agg, err := g.buildAggExpr(aggTerm.Func, grp.items, label)
		if err != nil {
			return err
		}
		st := make(symTuple, len(rule.Head.Args))
		for i := range rule.Head.Args {
			if i == aggPos {
				st[i] = agg
			} else {
				st[i] = grp.vals[i]
			}
		}
		g.sym[rule.Head.Pred] = append(g.sym[rule.Head.Pred], st)
	}
	return nil
}

func (g *grounder) buildAggExpr(fn colog.AggFunc, items []gval, label string) (gval, error) {
	allGround := true
	for _, it := range items {
		if it.isSym() {
			allGround = false
			break
		}
	}
	if allGround {
		// Pure ground aggregation: compute the value directly.
		m := map[string]*aggItem{}
		for _, it := range items {
			k := it.val.Key()
			if m[k] == nil {
				m[k] = &aggItem{val: it.val}
			}
			m[k].count++
		}
		v, err := computeAggregate(fn, m)
		if err != nil {
			return gval{}, everrf(label, "%v", err)
		}
		return gval{val: v}, nil
	}
	exprs := make([]*solver.Expr, len(items))
	for i, it := range items {
		e, err := g.toExpr(it, label)
		if err != nil {
			return gval{}, err
		}
		exprs[i] = e
	}
	m := g.model
	switch fn {
	case colog.AggSum:
		return gval{sym: m.Sum(exprs...)}, nil
	case colog.AggSumAbs:
		return gval{sym: m.SumAbs(exprs...)}, nil
	case colog.AggCount:
		return gval{val: colog.IntVal(int64(len(exprs)))}, nil
	case colog.AggMin:
		return gval{sym: m.Min(exprs...)}, nil
	case colog.AggMax:
		return gval{sym: m.Max(exprs...)}, nil
	case colog.AggAvg:
		return gval{sym: m.Avg(exprs...)}, nil
	case colog.AggStdev:
		return gval{sym: m.StdDev(exprs...)}, nil
	case colog.AggUnique:
		return gval{sym: m.CountDistinct(exprs...)}, nil
	}
	return gval{}, everrf(label, "unsupported aggregate %s over solver attributes", fn)
}

// applyConstraintRules grounds solver constraint rules: for every symbolic
// head tuple and every match of the rule body, the conjunction of the
// expression literals is posted as a solver constraint (section 5.4).
func (g *grounder) applyConstraintRules() error {
	for i, rule := range g.n.res.Program.Rules {
		if g.n.res.Classes[i] != analysis.SolverConstraintRule {
			continue
		}
		label := ruleName(rule)
		heads := g.sym[rule.Head.Pred]
		for _, st := range heads {
			env := senv{}
			okHead := true
			for ai, arg := range rule.Head.Args {
				v, ok := arg.(*colog.VarTerm)
				if !ok {
					if c, isConst := arg.(*colog.ConstTerm); isConst {
						if st[ai].isSym() || !c.Val.Equal(st[ai].val) {
							okHead = false
						}
						continue
					}
					return everrf(label, "unsupported head argument %s", arg)
				}
				if prev, bound := env[v.Name]; bound {
					if prev.isSym() || st[ai].isSym() || !prev.val.Equal(st[ai].val) {
						okHead = false
					}
					continue
				}
				env[v.Name] = st[ai]
			}
			if !okHead {
				continue
			}
			// Body: every match must hold; expression literals become
			// constraints via processCond's symbolic path, and symbolic
			// matches in matchSymAtom post equality constraints.
			if _, err := g.matchBody(rule, env); err != nil {
				return err
			}
		}
	}
	return nil
}

// setGoal locates the objective among the grounded tuples and installs it.
func (g *grounder) setGoal() error {
	goal := g.n.res.Program.Goal
	if goal == nil || goal.Sense == colog.GoalSatisfy {
		return nil
	}
	rows, err := g.rowsFor(goal.Atom.Pred)
	if err != nil {
		return everrf("goal", "%v", err)
	}
	var objective *solver.Expr
	found := false
	for _, st := range rows {
		env := senv{}
		ok := true
		var objVal gval
		for i, arg := range goal.Atom.Args {
			v, isVar := arg.(*colog.VarTerm)
			if !isVar {
				if c, isConst := arg.(*colog.ConstTerm); isConst && !st[i].isSym() && c.Val.Equal(st[i].val) {
					continue
				}
				ok = false
				break
			}
			if v.Name == goal.VarName {
				objVal = st[i]
				continue
			}
			if v.Loc && !st[i].isSym() && locAddr(st[i].val) != g.n.Addr {
				ok = false
				break
			}
			env[v.Name] = st[i]
		}
		if !ok {
			continue
		}
		if found {
			return everrf("goal", "multiple tuples match goal atom %s", goal.Atom)
		}
		found = true
		e, err := g.toExpr(objVal, "goal")
		if err != nil {
			return err
		}
		objective = e
		g.genv = map[string]colog.Value{}
		for k, gv := range env {
			if !gv.isSym() {
				g.genv[k] = gv.val
			}
		}
	}
	if !found {
		// No goal tuple derived (e.g. no interfering pairs for the link
		// under negotiation): degrade to a satisfy problem over the posted
		// constraints.
		return nil
	}
	if goal.Sense == colog.GoalMinimize {
		g.model.Minimize(objective)
	} else {
		g.model.Maximize(objective)
	}
	return nil
}
