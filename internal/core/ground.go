package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/colog"
	"repro/internal/solver"
)

// gval is a grounding-time value: either a ground constant or a symbolic
// solver expression (the runtime representation of a solver attribute).
// When the incremental grounder is recording, ground values lifted from
// table cells carry their provenance so constants grounded from them can be
// patched in place when the cell's value changes (see incremental.go).
type gval struct {
	val  colog.Value
	sym  *solver.Expr
	prov *cellProv
}

func (g gval) isSym() bool { return g.sym != nil }

func (g gval) String() string {
	if g.isSym() {
		return g.sym.String()
	}
	return g.val.String()
}

// key panics on symbolic values; callers must only key ground attributes.
func (g gval) key() string {
	if g.isSym() {
		panic("core: keying a symbolic value")
	}
	return g.val.Key()
}

// symTuple is a row of a solver table during grounding: ground values at
// regular attribute positions, expressions at solver attribute positions.
type symTuple []gval

// varInstance records one decision variable created from a var declaration,
// for hinting and materialization.
type varInstance struct {
	pred string
	vals []gval // the declared tuple; exactly the solver positions are symbolic
	v    *solver.Var
}

// grounder builds one COP from the node's current database state: it
// evaluates solver derivation rules bottom-up over symbolic tuples,
// translating selections and aggregations over solver attributes into
// constraints (paper sections 5.3-5.4).
//
// Grounding runs as an indexed, ordered pipeline: each rule body is planned
// once per solve (literals ordered most-bound-first, joins resolved to
// index probes), evaluated over a slice-backed binding frame with an undo
// trail, and independent rules within a dependency level are grounded by a
// bounded worker pool with results merged deterministically in rule order.
// In the default streaming mode (Config.GroundMode) joins consume tables
// directly through the persistent arrival-ordered indexes and memoized
// scans with compares pushed down into the row source (see stream.go); the
// materialized mode keeps the merged per-predicate row sets and transient
// indexes as an escape hatch. Both modes emit derivations and constraints
// in byte-identical order.
type grounder struct {
	n     *Node
	model *solver.Model
	sym   map[string][]symTuple
	insts []varInstance
	genv  map[string]colog.Value // goal bindings after grounding

	// stream selects the streaming join path (resolved from
	// Config.GroundMode before grounding starts).
	stream bool

	// Per-solve caches, written only between parallel phases: variable
	// slottings, merged row sets and transient indexes over them
	// (materialized mode), and unshadowed ground-row tails of solver
	// predicates (streaming mode).
	slotsCache      map[*colog.Rule]*ruleSlots
	rowsCache       map[string][]symTuple
	idxCache        map[string]*symIndex
	groundRowsCache map[string][][]colog.Value

	// recording enables provenance capture for the incremental grounding
	// cache: lifted rows carry cell provenance and each rule run records
	// which constants it grounded from which cells (see incremental.go).
	recording bool
	cacheRuns map[int]*cachedRun
}

// slotsFor returns the rule's variable slotting, computed on first use.
func (g *grounder) slotsFor(rule *colog.Rule) *ruleSlots {
	if g.slotsCache == nil {
		g.slotsCache = map[*colog.Rule]*ruleSlots{}
	}
	if s, ok := g.slotsCache[rule]; ok {
		return s
	}
	s := collectRuleSlots(rule)
	g.slotsCache[rule] = s
	return s
}

// cachedRows returns the merged row set for a predicate, cached until the
// predicate's symbolic tuples change.
func (g *grounder) cachedRows(pred string) ([]symTuple, error) {
	if rows, ok := g.rowsCache[pred]; ok {
		return rows, nil
	}
	rows, err := g.rowsFor(pred)
	if err != nil {
		return nil, err
	}
	if g.rowsCache == nil {
		g.rowsCache = map[string][]symTuple{}
	}
	g.rowsCache[pred] = rows
	return rows, nil
}

// cachedSymIndex returns a transient index over the predicate's merged rows
// keyed on cols, built on first use.
func (g *grounder) cachedSymIndex(pred string, cols []int, rows []symTuple) *symIndex {
	key := pred + "#" + idxName(cols)
	if ix, ok := g.idxCache[key]; ok {
		return ix
	}
	ix := buildSymIndex(rows, cols)
	if g.idxCache == nil {
		g.idxCache = map[string]*symIndex{}
	}
	g.idxCache[key] = ix
	return ix
}

// invalidatePred drops the caches for one predicate after its symbolic
// tuple set changed.
func (g *grounder) invalidatePred(pred string) {
	delete(g.rowsCache, pred)
	delete(g.groundRowsCache, pred)
	prefix := pred + "#"
	for k := range g.idxCache {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			delete(g.idxCache, k)
		}
	}
}

// unknownPredErr is the shared error for a body predicate with no table —
// both grounding modes surface it identically at plan time.
func unknownPredErr(pred string) error {
	return fmt.Errorf("unknown predicate %s", pred)
}

// streamingGround maps Config.GroundMode to the grounder's join strategy.
// The zero value selects streaming; "materialized" is the escape hatch that
// rebuilds per-predicate merged row sets and transient indexes per solve.
// Unknown names are an error, mirroring solverEngine.
func streamingGround(mode string) (bool, error) {
	switch mode {
	case "", "streaming":
		return true, nil
	case "materialized":
		return false, nil
	default:
		return false, fmt.Errorf("core: unknown GroundMode %q (want \"streaming\" or \"materialized\")", mode)
	}
}

// solverEngine maps the Config.SolverEngine string to the solver's engine
// selector. Unknown names are an error: silently falling back would let a
// typo'd ablation config benchmark the default engine against itself.
func solverEngine(name string) (solver.Engine, error) {
	switch name {
	case "", "event":
		return solver.EngineEvent, nil
	case "legacy":
		return solver.EngineLegacy, nil
	default:
		return 0, fmt.Errorf("core: unknown SolverEngine %q (want \"event\" or \"legacy\")", name)
	}
}

// SolveOptions tune one COP execution.
type SolveOptions struct {
	// MaxTime overrides Config.SolverMaxTime when positive.
	MaxTime time.Duration
	// Hint supplies a warm-start value per declared variable tuple: pred is
	// the var table, vals the declared arguments with solver positions
	// holding zero values. Returning ok=false leaves the variable unhinted.
	Hint func(pred string, vals []colog.Value) (int64, bool)
	// FirstSolution stops at the first incumbent (with Hint: reproduces the
	// warm start exactly when feasible).
	FirstSolution bool
	// ValueOrder optionally reorders candidate values per variable.
	ValueOrder func(v *solver.Var, vals []int64) []int64
	// Interrupt, when non-nil, is polled by the search at its budget-check
	// cadence; the first true return stops the search with the best
	// incumbent so far and marks the result Degraded. The serving runtime's
	// per-tick deadline arrives through this hook. While the hook returns
	// false the solver trace is identical to a run without it.
	Interrupt func() bool
	// DeferDegraded skips materialization when the solve was cut short by
	// Interrupt: the result still carries the incumbent assignments, but
	// tables, outbox, and the write-ahead log are left untouched, so the
	// engine's delta/arrival-order state stays exactly what a batch node
	// that never ran the degraded solve would hold. The serving runtime
	// publishes such incumbents as an overlay and lets a later completed
	// tick materialize; see docs/serving.md.
	DeferDegraded bool
}

// Assignment is one concrete solver-variable tuple in a solve result.
type Assignment struct {
	Pred string
	Vals []colog.Value
}

// SolveResult reports the outcome of one COP execution.
type SolveResult struct {
	Status      solver.Status
	Objective   float64
	HasGoal     bool
	Assignments []Assignment
	NumVars     int
	NumCons     int
	// Shapes counts the grounded constraints per propagator shape (linear,
	// unary, binary, generic, const), as classified at grounding time.
	Shapes map[string]int
	Stats  solver.Stats
	// GroundWall is the wall time spent building (or incrementally
	// patching) the solver model before the search started; the search
	// itself is Stats.Elapsed. Cluster epoch statistics fold both into
	// their per-epoch timing breakdown.
	GroundWall time.Duration
	// Ground reports how the model was built when incremental re-grounding
	// is enabled (nil otherwise).
	Ground *GroundInfo
	// Degraded reports that SolveOptions.Interrupt cut the search short:
	// the assignments are the best incumbent at the interrupt, not a
	// completed (optimal or budget-exhausted) outcome. Config-level
	// node/time budgets do not set it.
	Degraded bool
	// Materialized reports whether the outcome was written back into the
	// engine's tables; false when DeferDegraded suppressed a degraded
	// materialization (or the solve found nothing to materialize).
	Materialized bool
}

// GroundInfo reports the incremental grounder's work for one solve.
type GroundInfo struct {
	// Mode is "full" for a ground from scratch (first solve, structural
	// var-table change, or compaction) and "incremental" otherwise.
	Mode string
	// Rule-level outcome counts for the incremental mode.
	RulesReused, RulesPatched, RulesReground int
	// ConstsPatched counts constant nodes rewritten in place.
	ConstsPatched int
}

// Feasible reports whether the result carries a usable assignment.
func (r *SolveResult) Feasible() bool {
	return r.Status == solver.StatusOptimal || r.Status == solver.StatusFeasible
}

// Solve grounds the program's solver rules against the current database,
// runs the constraint solver, and materializes the optimization output
// (goal and var tables) back into the engine, triggering downstream rule
// reevaluation.
func (n *Node) Solve(opts SolveOptions) (*SolveResult, error) {
	n.mu.Lock()
	res, err := n.solveLocked(opts)
	if n.holding {
		n.mu.Unlock()
		return res, err
	}
	out := n.takeOutbox()
	n.mu.Unlock()
	if ferr := n.flush(out); err == nil && ferr != nil {
		err = ferr
	}
	return res, err
}

func (n *Node) solveLocked(opts SolveOptions) (*SolveResult, error) {
	n.stats.Solves++
	if n.cfg.SolverIncremental {
		return n.solveIncrementalLocked(opts)
	}
	groundStart := time.Now()
	stream, err := streamingGround(n.cfg.GroundMode)
	if err != nil {
		return nil, err
	}
	g := &grounder{
		n:      n,
		model:  solver.NewModel(),
		sym:    map[string][]symTuple{},
		stream: stream,
	}
	if err := g.createVars(); err != nil {
		return nil, err
	}
	res := &SolveResult{}
	if g.model.NumVars() == 0 {
		// Nothing to optimize (e.g. no rows in the forall tables).
		res.Status = solver.StatusOptimal
		n.LastSolveResult = res
		return res, nil
	}
	if err := g.deriveSolverRules(); err != nil {
		return nil, err
	}
	if err := g.applyConstraintRules(); err != nil {
		return nil, err
	}
	if err := g.setGoal(); err != nil {
		return nil, err
	}
	res.GroundWall = time.Since(groundStart)
	return n.finishSolve(g, opts, res)
}

// finishSolve runs the solver over a grounded model and materializes the
// result: the phase shared by the fresh and incremental grounding paths.
func (n *Node) finishSolve(g *grounder, opts SolveOptions, res *SolveResult) (*SolveResult, error) {
	// Classify the grounded constraints into propagator shapes while still
	// in the grounding phase: the solver consumes the classification (both
	// engines share the linear extraction), and repeated solves reuse it.
	g.model.Prepare()
	res.Shapes = g.model.ShapeStats()

	engine, err := solverEngine(n.cfg.SolverEngine)
	if err != nil {
		return nil, err
	}
	sopts := solver.Options{
		MaxTime:       n.cfg.SolverMaxTime,
		MaxNodes:      n.cfg.SolverMaxNodes,
		Propagate:     n.cfg.SolverPropagate,
		FirstSolution: opts.FirstSolution,
		Engine:        engine,
		Fixpoint:      n.cfg.SolverFixpoint,
		Restarts:      n.cfg.SolverRestarts,
		PhaseSaving:   n.cfg.SolverRestarts > 0,
	}
	if opts.MaxTime > 0 {
		sopts.MaxTime = opts.MaxTime
	}
	if opts.ValueOrder != nil {
		sopts.ValueOrder = opts.ValueOrder
	}
	if opts.Interrupt != nil {
		sopts.Interrupt = opts.Interrupt
	}
	if opts.Hint != nil {
		sopts.Hints = map[int]int64{}
		for _, inst := range g.insts {
			vals := make([]colog.Value, len(inst.vals))
			for i, gv := range inst.vals {
				if gv.isSym() {
					vals[i] = colog.IntVal(0)
				} else {
					vals[i] = gv.val
				}
			}
			if h, ok := opts.Hint(inst.pred, vals); ok {
				sopts.Hints[inst.v.ID] = h
			}
		}
	} else if n.cfg.SolverWarmStart {
		sopts.Hints = n.warmStartHints(g)
	}
	sol := g.model.Solve(sopts)
	res.Status = sol.Status
	res.NumVars = g.model.NumVars()
	res.NumCons = g.model.NumConstraints()
	res.Stats = sol.Stats
	res.Degraded = sol.Stats.Interrupted

	if !sol.Feasible() {
		n.LastSolveResult = res
		return res, nil
	}
	res.Objective = sol.Objective
	if obj, _ := g.model.Objective(); obj != nil {
		res.HasGoal = true
	}
	// Concrete assignments.
	for _, inst := range g.insts {
		vals := make([]colog.Value, len(inst.vals))
		for i, gv := range inst.vals {
			if gv.isSym() {
				vals[i] = colog.IntVal(sol.Value(inst.v))
			} else {
				vals[i] = gv.val
			}
		}
		res.Assignments = append(res.Assignments, Assignment{Pred: inst.pred, Vals: vals})
	}
	if opts.DeferDegraded && res.Degraded {
		// A deadline-interrupted incumbent must not reach the tables: the
		// insert/retract churn would advance arrival-order seqs and the
		// WAL in a way no batch re-solve over the same facts reproduces.
		// The caller publishes the incumbent as an overlay instead.
		n.LastSolveResult = res
		return res, nil
	}
	if err := n.materialize(g, res); err != nil {
		return res, err
	}
	res.Materialized = true
	n.LastSolveResult = res
	return res, nil
}

// matTable is one predicate's materialized solver output — the unit the
// write-ahead log records per solve, in sorted predicate order, so a
// replayed materialization installs tuples in exactly the live order.
type matTable struct {
	pred   string
	tuples []Tuple
}

// materialize writes the optimization output back into the engine: var
// tables receive the concrete assignments, the goal table the objective
// value. Previous materializations of keyless tables are retracted first so
// repeated solves replace rather than accumulate. The whole outcome is
// logged as one solve record before it is applied, so a crash either
// persists the full materialization or none of it.
func (n *Node) materialize(g *grounder, res *SolveResult) error {
	byPred := map[string][]Tuple{}
	for _, a := range res.Assignments {
		byPred[a.Pred] = append(byPred[a.Pred], Tuple{a.Pred, a.Vals})
	}
	mats := make([]matTable, 0, len(byPred))
	for pred, tuples := range byPred {
		mats = append(mats, matTable{pred: pred, tuples: tuples})
	}
	sort.Slice(mats, func(i, j int) bool { return mats[i].pred < mats[j].pred })
	// Goal tuple.
	var goalTuple *Tuple
	if goal := n.res.Program.Goal; goal != nil && goal.Sense != colog.GoalSatisfy && res.HasGoal {
		vals := make([]colog.Value, len(goal.Atom.Args))
		okAll := true
		for i, arg := range goal.Atom.Args {
			switch t := arg.(type) {
			case *colog.VarTerm:
				if t.Name == goal.VarName {
					vals[i] = colog.FloatVal(res.Objective)
				} else if t.Loc {
					vals[i] = colog.StringVal(n.Addr)
				} else if v, ok := g.genv[t.Name]; ok {
					vals[i] = v
				} else {
					okAll = false
				}
			case *colog.ConstTerm:
				vals[i] = t.Val
			default:
				okAll = false
			}
		}
		if okAll {
			t := Tuple{goal.Atom.Pred, vals}
			goalTuple = &t
		}
	}

	n.walSolve(mats, goalTuple)
	return n.applyMaterialization(mats, goalTuple)
}

// applyMaterialization installs a solve outcome — shared between a live
// materialize and log replay, so both take the identical delta sequence.
func (n *Node) applyMaterialization(mats []matTable, goalTuple *Tuple) error {
	for _, mt := range mats {
		pred, tuples := mt.pred, mt.tuples
		tbl := n.tables[pred]
		// Unkeyed tables: retract the previous solve's output so repeated
		// solves replace it, diffing against it first so rows the new
		// solution keeps produce no delta traffic at all. Keyed tables
		// (e.g. the wireless assign table, keyed on the link) replace per
		// key on insert and accumulate results across per-link
		// negotiations.
		if tbl != nil && !tbl.event && tbl.keyCols == nil {
			newCount := make(map[string]int, len(tuples))
			for _, t := range tuples {
				newCount[valsKey(t.Vals)]++
			}
			skip := make(map[string]int, len(tuples))
			for _, old := range n.lastMaterialized[pred] {
				k := valsKey(old.Vals)
				if newCount[k] > 0 {
					newCount[k]--
					skip[k]++
					continue
				}
				n.enqueue(delta{old, -1, false})
			}
			for _, t := range tuples {
				k := valsKey(t.Vals)
				if skip[k] > 0 {
					skip[k]--
					continue
				}
				n.enqueue(delta{t, +1, false})
			}
		} else {
			for _, t := range tuples {
				n.enqueue(delta{t, +1, false})
			}
		}
		n.lastMaterialized[pred] = tuples
	}
	if goalTuple != nil {
		tbl := n.tables[goalTuple.Pred]
		if tbl != nil && !tbl.event {
			for _, old := range n.lastMaterialized[goalTuple.Pred] {
				n.enqueue(delta{old, -1, false})
			}
		}
		n.enqueue(delta{*goalTuple, +1, false})
		n.lastMaterialized[goalTuple.Pred] = []Tuple{*goalTuple}
	}
	return n.drain()
}

// createVars instantiates decision variables per var declaration: one
// variable for each row of the forall table (paper section 4.2).
func (g *grounder) createVars() error {
	for _, vd := range g.n.res.Program.Vars {
		forallRows := g.n.tables[vd.ForAll.Pred]
		if forallRows == nil {
			return everrf("var", "forall table %s unknown", vd.ForAll.Pred)
		}
		dom, err := g.domainFor(vd)
		if err != nil {
			return err
		}
		for _, rowVals := range forallRows.snapshotStable() {
			env := map[string]colog.Value{}
			if !matchAtom(vd.ForAll, rowVals, env) {
				continue
			}
			st := make(symTuple, len(vd.Decl.Args))
			var inst varInstance
			inst.pred = vd.Decl.Pred
			for i, arg := range vd.Decl.Args {
				v := arg.(*colog.VarTerm)
				if bound, ok := env[v.Name]; ok {
					st[i] = gval{val: bound}
					continue
				}
				name := fmt.Sprintf("%s[%s]#%d", vd.Decl.Pred, valsKey(rowVals), i)
				sv := g.model.VarWithDomain(name, dom)
				st[i] = gval{sym: g.model.VarExpr(sv)}
				inst.v = sv
			}
			inst.vals = st
			g.insts = append(g.insts, inst)
			g.sym[vd.Decl.Pred] = append(g.sym[vd.Decl.Pred], st)
		}
	}
	return nil
}

func (g *grounder) domainFor(vd *colog.VarDecl) (solver.Domain, error) {
	d := vd.Domain
	if d == nil {
		return solver.BinaryDomain(), nil
	}
	switch {
	case d.FromTable != "":
		tbl := g.n.tables[d.FromTable]
		if tbl == nil {
			return solver.Domain{}, everrf("var", "domain table %s unknown", d.FromTable)
		}
		var vals []int64
		for _, rowVals := range tbl.snapshotStable() {
			last := rowVals[len(rowVals)-1]
			if last.Kind != colog.KindInt {
				return solver.Domain{}, everrf("var", "domain table %s has non-integer value %s", d.FromTable, last)
			}
			vals = append(vals, last.I)
		}
		if len(vals) == 0 {
			return solver.Domain{}, everrf("var", "domain table %s is empty", d.FromTable)
		}
		return solver.NewDomain(vals...), nil
	case d.Explicit != nil:
		return solver.NewDomain(d.Explicit...), nil
	default:
		return solver.NewRangeDomain(d.Lo, d.Hi), nil
	}
}

// deriveSolverRules evaluates solver derivation rules bottom-up in
// dependency order, building symbolic tuples and definitional constraints.
// Rules within one dependency level are independent (they only read
// predicates produced by earlier levels), so they are grounded in parallel
// across a bounded worker pool; each rule's symbolic tuples and deferred
// constraints are merged in rule order, making the outcome identical to a
// serial run.
func (g *grounder) deriveSolverRules() error {
	rules := g.n.res.Program.Rules
	levels := solverRuleLevels(rules, g.n.res.SolverOrder)
	workers := g.n.groundWorkers()
	for _, level := range levels {
		// Plans are built serially: they populate the shared row and index
		// caches the workers then read without synchronization.
		plans := make([]*groundPlan, len(level))
		for i, ri := range level {
			p, err := g.planGroundBody(rules[ri], nil)
			if err != nil {
				return err
			}
			plans[i] = p
		}
		runs := make([]*groundRun, len(level))
		errs := make([]error, len(level))
		ground := func(i int) {
			runs[i], errs[i] = g.groundRuleRun(rules[level[i]], plans[i])
		}
		if workers > 1 && len(level) > 1 {
			runLimited(len(level), workers, ground)
		} else {
			for i := range level {
				ground(i)
			}
		}
		// Deterministic merge in rule order.
		for i, ri := range level {
			if errs[i] != nil {
				return errs[i]
			}
			head := rules[ri].Head.Pred
			if len(runs[i].out) > 0 {
				g.sym[head] = append(g.sym[head], runs[i].out...)
				g.invalidatePred(head)
			}
			for _, e := range runs[i].reqs {
				g.model.Require(e)
			}
			g.noteCacheRun(ri, rules[ri], runs[i])
		}
	}
	return nil
}

// groundRun is the per-rule evaluation state of one grounding: the binding
// frame, the deferred constraint posts (so workers never mutate the model's
// constraint store), the emitted head tuples, and (in recording mode) the
// provenance recorder feeding the incremental grounding cache.
type groundRun struct {
	frame *symFrame
	rec   *runRecorder
	reqs  []*solver.Expr
	out   []symTuple
}

func (r *groundRun) require(e *solver.Expr) { r.reqs = append(r.reqs, e) }

// newGroundRun builds the evaluation state for one rule grounding,
// attaching a provenance recorder (seeded with the plan's static join-column
// taints) when the grounder is recording.
func (g *grounder) newGroundRun(p *groundPlan) *groundRun {
	run := &groundRun{frame: newSymFrame(p.slots)}
	if g.recording {
		run.rec = newRunRecorder()
		run.rec.addPlanTaints(p)
		run.frame.rec = run.rec
	}
	return run
}

// groundRuleRun grounds one solver derivation rule over its compiled plan.
func (g *grounder) groundRuleRun(rule *colog.Rule, p *groundPlan) (*groundRun, error) {
	run := g.newGroundRun(p)
	if rule.Head.HasAggregate() {
		return run, g.collectAggregate(rule, p, run)
	}
	err := g.execPlan(run, p, 0, func(f *symFrame) error {
		st := make(symTuple, len(rule.Head.Args))
		for i, arg := range rule.Head.Args {
			gv, err := g.evalSym(arg, f, p.label)
			if err != nil {
				return err
			}
			// A ground cell emitted into the head flows into downstream
			// rules: its source column is structural for this rule.
			if gv.prov != nil && !gv.isSym() {
				run.rec.taint(gv.prov)
			}
			st[i] = gv
		}
		run.out = append(run.out, st)
		return nil
	})
	return run, err
}

// execPlan runs the ordered body steps from idx onward, invoking sink for
// every complete binding. Join steps probe the transient index when the
// bound prefix is ground, falling back to the cached scan otherwise;
// bindings are trailed on the frame and undone per candidate row.
func (g *grounder) execPlan(run *groundRun, p *groundPlan, idx int, sink func(*symFrame) error) error {
	if idx == len(p.steps) {
		return sink(run.frame)
	}
	f := run.frame
	step := &p.steps[idx]
	switch step.kind {
	case gJoin:
		if step.streamed {
			return g.streamJoin(run, p, idx, sink)
		}
		if step.idx != nil {
			if key, ok := f.appendProbeKey(step.probeOps); ok {
				keyed, wild := step.idx.probe(key)
				if err := g.joinRows(run, p, idx, keyed, sink); err != nil {
					return err
				}
				return g.joinRows(run, p, idx, wild, sink)
			}
		}
		return g.joinRows(run, p, idx, step.rows, sink)
	case gFilter:
		gv, err := g.evalSym(step.cond, f, p.label)
		if err != nil {
			return err
		}
		if !gv.isSym() {
			if gv.prov != nil {
				run.rec.taint(gv.prov) // a bare cell deciding control flow
			}
			if gv.val.Kind != colog.KindBool {
				return everrf(p.label, "condition %s evaluated to non-boolean %s", step.cond, gv.val)
			}
			if !gv.val.B {
				return nil // filtered out
			}
			return g.execPlan(run, p, idx+1, sink)
		}
		// Symbolic selection: becomes a solver constraint scoped to this
		// binding (selection-to-constraint compilation, paper section 5.3).
		if !gv.sym.IsBool() {
			return everrf(p.label, "condition %s is symbolic but not boolean", step.cond)
		}
		run.require(gv.sym)
		return g.execPlan(run, p, idx+1, sink)
	case gBind, gAssign:
		gv, err := g.evalSym(step.rhs, f, p.label)
		if err != nil {
			return err
		}
		if step.rebind {
			// Reassignment of a bound variable: restore the previous value
			// on backtrack instead of trailing a fresh binding.
			prev := f.vals[step.slot]
			f.vals[step.slot] = gv
			err := g.execPlan(run, p, idx+1, sink)
			f.vals[step.slot] = prev
			return err
		}
		m := f.mark()
		f.bind(step.slot, gv)
		if err := g.execPlan(run, p, idx+1, sink); err != nil {
			return err
		}
		f.undo(m)
		return nil
	case gReify:
		// Reified: (C==k)==(bool-expr)  =>  C := ITE(bool, k, other).
		gv, err := g.evalSym(step.rhs, f, p.label)
		if err != nil {
			return err
		}
		be, err := g.toExpr(gv, p.label, run.rec)
		if err != nil {
			return err
		}
		if !be.IsBool() {
			return everrf(p.label, "reified binding (%s==%d)==(%s): right side is not boolean", p.slots.names[step.slot], step.k, step.rhs)
		}
		other := int64(0)
		if step.k == 0 {
			other = 1
		}
		ite := g.model.ITE(be, g.model.ConstInt(step.k), g.model.ConstInt(other))
		m := f.mark()
		f.bind(step.slot, gval{sym: ite})
		if err := g.execPlan(run, p, idx+1, sink); err != nil {
			return err
		}
		f.undo(m)
		return nil
	}
	return everrf(p.label, "unknown grounding step")
}

func (g *grounder) joinRows(run *groundRun, p *groundPlan, idx int, rows []symTuple, sink func(*symFrame) error) error {
	f := run.frame
	ops := p.steps[idx].ops
	for _, st := range rows {
		m := f.mark()
		ok, err := g.matchSymRow(run, ops, st, p.label)
		if err != nil {
			return err
		}
		if ok {
			if err := g.execPlan(run, p, idx+1, sink); err != nil {
				return err
			}
		}
		f.undo(m)
	}
	return nil
}

// rowsFor returns the rows of a predicate for grounding. For solver tables
// the symbolic tuples come first; materialized rows from previous solves
// whose regular-attribute key does not collide with a symbolic tuple are
// appended as ground rows. This implements the paper's distributed channel
// selection (A.3), where the assign table holds both the variable of the
// link under negotiation and the concrete assignments collected from
// neighbors.
func (g *grounder) rowsFor(pred string) ([]symTuple, error) {
	tbl := g.n.tables[pred]
	sts, isSym := g.sym[pred]
	if !isSym {
		if tbl == nil {
			return nil, unknownPredErr(pred)
		}
		rows := tbl.snapshotStable()
		out := make([]symTuple, len(rows))
		for i, vals := range rows {
			out[i] = g.lift(pred, vals)
		}
		return out, nil
	}
	if tbl == nil || tbl.size() == 0 {
		return sts, nil
	}
	// Merge in materialized rows not shadowed by a symbolic tuple.
	ti := g.n.res.Tables[pred]
	shadow := map[string]bool{}
	for _, st := range sts {
		if k, ok := symRegKey(ti, func(i int) (colog.Value, bool) {
			if st[i].isSym() {
				return colog.Value{}, false
			}
			return st[i].val, true
		}); ok {
			shadow[k] = true
		}
	}
	out := append([]symTuple(nil), sts...)
	for _, vals := range tbl.snapshotStable() {
		k, _ := symRegKey(ti, func(i int) (colog.Value, bool) { return vals[i], true })
		if shadow[k] {
			continue
		}
		out = append(out, g.lift(pred, vals))
	}
	return out, nil
}

// lift turns a ground table row into a symbolic tuple; in recording mode
// every cell carries its provenance for the incremental grounding cache.
func (g *grounder) lift(pred string, vals []colog.Value) symTuple {
	st := make(symTuple, len(vals))
	if !g.recording {
		for j, v := range vals {
			st[j] = gval{val: v}
		}
		return st
	}
	key := valsKey(vals)
	provs := make([]cellProv, len(vals))
	for j, v := range vals {
		provs[j] = cellProv{pred: pred, key: key, col: j}
		st[j] = gval{val: v, prov: &provs[j]}
	}
	return st
}

// matchSymRow unifies compiled atom ops against a symbolic tuple.
// Ground-vs-ground mismatches fail the match; binding a variable to a
// symbolic value is allowed; comparing two symbolic values posts an
// equality constraint (the wireless channel-symmetry idiom
// assign(X,Y,C) -> assign(Y,X,C)). Constraints posted before a later
// argument fails the match are kept, matching the seed grounder's
// behavior.
func (g *grounder) matchSymRow(run *groundRun, ops []argOp, st symTuple, label string) (bool, error) {
	if len(ops) != len(st) {
		return false, nil
	}
	f := run.frame
	for i := range ops {
		op := &ops[i]
		switch op.kind {
		case argBind:
			f.bind(op.slot, st[i])
		case argCheck:
			bound := f.vals[op.slot]
			if !bound.isSym() && !st[i].isSym() {
				if !bound.val.Equal(st[i].val) {
					return false, nil
				}
				continue
			}
			// Symbolic on either side: require equality in the model.
			le, err := g.toExpr(bound, label, run.rec)
			if err != nil {
				return false, err
			}
			re, err := g.toExpr(st[i], label, run.rec)
			if err != nil {
				return false, err
			}
			run.require(g.model.Eq(le, re))
		case argConst:
			if st[i].isSym() {
				e, err := g.toExpr(st[i], label, run.rec)
				if err != nil {
					return false, err
				}
				run.require(g.model.Eq(e, g.model.Const(op.val.Num())))
				continue
			}
			if !op.val.Equal(st[i].val) {
				return false, nil
			}
		case argExpr:
			return false, everrf(label, "unsupported atom argument %s during grounding", op.term)
		}
	}
	return true, nil
}

// toExpr lifts a gval into a solver expression. Ground numeric cells become
// constant nodes; in recording mode the constant's provenance is registered
// so a later change to the cell can patch it in place, while ground booleans
// (whose value shapes the expression) taint their source column instead.
func (g *grounder) toExpr(gv gval, label string, rec *runRecorder) (*solver.Expr, error) {
	if gv.isSym() {
		return gv.sym, nil
	}
	if !gv.val.IsNumeric() && gv.val.Kind != colog.KindBool {
		return nil, everrf(label, "cannot lift %s into a solver expression", gv.val)
	}
	if gv.val.Kind == colog.KindBool {
		if gv.prov != nil {
			rec.taint(gv.prov)
		}
		return g.model.Bool(gv.val.B), nil
	}
	e := g.model.Const(gv.val.Num())
	if gv.prov != nil {
		rec.ref(e, gv.prov)
	}
	return e, nil
}

// evalSym evaluates a term under a symbolic frame: ground subterms fold to
// constants, symbolic subterms build solver expression nodes.
func (g *grounder) evalSym(t colog.Term, env *symFrame, label string) (gval, error) {
	switch x := t.(type) {
	case *colog.ConstTerm:
		return gval{val: x.Val}, nil
	case *colog.VarTerm:
		gv, ok := env.lookupVar(x.Name)
		if !ok {
			return gval{}, everrf(label, "unbound variable %s during grounding", x.Name)
		}
		return gv, nil
	case *colog.ParamTerm:
		return gval{}, everrf(label, "unbound parameter %s (bind via Config.Params)", x.Name)
	case *colog.BinTerm:
		l, err := g.evalSym(x.L, env, label)
		if err != nil {
			return gval{}, err
		}
		r, err := g.evalSym(x.R, env, label)
		if err != nil {
			return gval{}, err
		}
		if !l.isSym() && !r.isSym() {
			// Folding consumes the cell values structurally: the result no
			// longer tracks a single source cell, so taint both inputs.
			if l.prov != nil {
				env.rec.taint(l.prov)
			}
			if r.prov != nil {
				env.rec.taint(r.prov)
			}
			v, err := applyBin(x.Op, l.val, r.val)
			if err != nil {
				return gval{}, everrf(label, "%v", err)
			}
			return gval{val: v}, nil
		}
		le, err := g.toExpr(l, label, env.rec)
		if err != nil {
			return gval{}, err
		}
		re, err := g.toExpr(r, label, env.rec)
		if err != nil {
			return gval{}, err
		}
		return g.applySymBin(x.Op, le, re, label)
	case *colog.NegTerm:
		v, err := g.evalSym(x.X, env, label)
		if err != nil {
			return gval{}, err
		}
		if !v.isSym() {
			if v.prov != nil {
				env.rec.taint(v.prov)
			}
			nv, err := applyNeg(v.val)
			if err != nil {
				return gval{}, everrf(label, "%v", err)
			}
			return gval{val: nv}, nil
		}
		return gval{sym: g.model.Neg(v.sym)}, nil
	case *colog.NotTerm:
		v, err := g.evalSym(x.X, env, label)
		if err != nil {
			return gval{}, err
		}
		if !v.isSym() {
			if v.prov != nil {
				env.rec.taint(v.prov)
			}
			nv, err := applyNot(v.val)
			if err != nil {
				return gval{}, everrf(label, "%v", err)
			}
			return gval{val: nv}, nil
		}
		return gval{sym: g.model.Not(v.sym)}, nil
	case *colog.AbsTerm:
		v, err := g.evalSym(x.X, env, label)
		if err != nil {
			return gval{}, err
		}
		if !v.isSym() {
			if v.prov != nil {
				env.rec.taint(v.prov)
			}
			av, err := applyAbs(v.val)
			if err != nil {
				return gval{}, everrf(label, "%v", err)
			}
			return gval{val: av}, nil
		}
		return gval{sym: g.model.Abs(v.sym)}, nil
	case *colog.FuncTerm:
		args := make([]colog.Value, len(x.Args))
		for i, a := range x.Args {
			gv, err := g.evalSym(a, env, label)
			if err != nil {
				return gval{}, err
			}
			if gv.isSym() {
				return gval{}, everrf(label, "function %s over symbolic arguments is not supported", x.Name)
			}
			if gv.prov != nil {
				env.rec.taint(gv.prov)
			}
			args[i] = gv.val
		}
		v, err := applyFunc(x.Name, args)
		if err != nil {
			return gval{}, everrf(label, "%v", err)
		}
		return gval{val: v}, nil
	}
	return gval{}, everrf(label, "unsupported term %T during grounding", t)
}

func (g *grounder) applySymBin(op colog.BinOp, l, r *solver.Expr, label string) (gval, error) {
	m := g.model
	switch op {
	case colog.OpAdd:
		return gval{sym: m.Add(l, r)}, nil
	case colog.OpSub:
		return gval{sym: m.Sub(l, r)}, nil
	case colog.OpMul:
		// MulKeep: a folded-away constant could never be patched in place
		// by the incremental grounder (see solver.Model.MulKeep).
		return gval{sym: m.MulKeep(l, r)}, nil
	case colog.OpDiv:
		return gval{sym: m.Div(l, r)}, nil
	case colog.OpEq:
		return gval{sym: m.Eq(l, r)}, nil
	case colog.OpNe:
		return gval{sym: m.Ne(l, r)}, nil
	case colog.OpLt:
		return gval{sym: m.Lt(l, r)}, nil
	case colog.OpLe:
		return gval{sym: m.Le(l, r)}, nil
	case colog.OpGt:
		return gval{sym: m.Gt(l, r)}, nil
	case colog.OpGe:
		return gval{sym: m.Ge(l, r)}, nil
	case colog.OpAnd:
		return gval{sym: m.And(l, r)}, nil
	case colog.OpOr:
		return gval{sym: m.Or(l, r)}, nil
	}
	return gval{}, everrf(label, "unsupported symbolic operator %s", op)
}

// collectAggregate evaluates an aggregate-head rule: matches are grouped by
// the ground head attributes as they stream out of the plan, then one
// aggregate expression per group (SUM -> solver.Sum, STDEV ->
// solver.StdDev, ...) is emitted — the compilation of aggregations over
// solver attributes described in section 5.3.
func (g *grounder) collectAggregate(rule *colog.Rule, p *groundPlan, run *groundRun) error {
	label := p.label
	aggPos := -1
	var aggTerm *colog.AggTerm
	for i, arg := range rule.Head.Args {
		if at, ok := arg.(*colog.AggTerm); ok {
			if aggPos >= 0 {
				return everrf(label, "multiple aggregates in head")
			}
			aggPos, aggTerm = i, at
		}
	}
	type group struct {
		vals  []gval
		items []gval
	}
	groups := map[string]*group{}
	var order []string
	err := g.execPlan(run, p, 0, func(f *symFrame) error {
		headVals := make([]gval, len(rule.Head.Args))
		keyParts := ""
		for i, arg := range rule.Head.Args {
			if i == aggPos {
				continue
			}
			gv, err := g.evalSym(arg, f, label)
			if err != nil {
				return err
			}
			if gv.isSym() {
				return everrf(label, "aggregate group-by attribute %d is symbolic", i)
			}
			if gv.prov != nil {
				run.rec.taint(gv.prov) // grouping key: structural
			}
			headVals[i] = gv
			keyParts += gv.key() + "|"
		}
		item, ok := f.lookupVar(aggTerm.Over)
		if !ok {
			return everrf(label, "aggregate variable %s unbound", aggTerm.Over)
		}
		grp := groups[keyParts]
		if grp == nil {
			grp = &group{vals: headVals}
			groups[keyParts] = grp
			order = append(order, keyParts)
		}
		grp.items = append(grp.items, item)
		return nil
	})
	if err != nil {
		return err
	}
	for _, k := range order {
		grp := groups[k]
		agg, err := g.buildAggExpr(aggTerm.Func, grp.items, label, run.rec)
		if err != nil {
			return err
		}
		st := make(symTuple, len(rule.Head.Args))
		for i := range rule.Head.Args {
			if i == aggPos {
				st[i] = agg
			} else {
				st[i] = grp.vals[i]
			}
		}
		run.out = append(run.out, st)
	}
	return nil
}

func (g *grounder) buildAggExpr(fn colog.AggFunc, items []gval, label string, rec *runRecorder) (gval, error) {
	allGround := true
	for _, it := range items {
		if it.isSym() {
			allGround = false
			break
		}
	}
	if allGround {
		// Pure ground aggregation: compute the value directly. The folded
		// result stops tracking individual cells, so taint every input.
		m := map[string]*aggItem{}
		for _, it := range items {
			if it.prov != nil {
				rec.taint(it.prov)
			}
			k := it.val.Key()
			if m[k] == nil {
				m[k] = &aggItem{val: it.val}
			}
			m[k].count++
		}
		v, err := computeAggregate(fn, m)
		if err != nil {
			return gval{}, everrf(label, "%v", err)
		}
		return gval{val: v}, nil
	}
	exprs := make([]*solver.Expr, len(items))
	for i, it := range items {
		e, err := g.toExpr(it, label, rec)
		if err != nil {
			return gval{}, err
		}
		exprs[i] = e
	}
	m := g.model
	switch fn {
	case colog.AggSum:
		return gval{sym: m.Sum(exprs...)}, nil
	case colog.AggSumAbs:
		return gval{sym: m.SumAbs(exprs...)}, nil
	case colog.AggCount:
		return gval{val: colog.IntVal(int64(len(exprs)))}, nil
	case colog.AggMin:
		return gval{sym: m.Min(exprs...)}, nil
	case colog.AggMax:
		return gval{sym: m.Max(exprs...)}, nil
	case colog.AggAvg:
		return gval{sym: m.Avg(exprs...)}, nil
	case colog.AggStdev:
		return gval{sym: m.StdDev(exprs...)}, nil
	case colog.AggUnique:
		return gval{sym: m.CountDistinct(exprs...)}, nil
	}
	return gval{}, everrf(label, "unsupported aggregate %s over solver attributes", fn)
}

// applyConstraintRules grounds solver constraint rules: for every symbolic
// head tuple and every match of the rule body, the conjunction of the
// expression literals is posted as a solver constraint (section 5.4).
// Constraint rules only read the derived symbolic tuples, so they are
// independent of each other: each rule runs on a worker with its
// constraints buffered, merged in rule order afterwards.
func (g *grounder) applyConstraintRules() error {
	var jobs []*constraintJob
	for i, rule := range g.n.res.Program.Rules {
		if g.n.res.Classes[i] != analysis.SolverConstraintRule {
			continue
		}
		j, err := g.buildConstraintJob(i, rule)
		if err != nil {
			return err
		}
		jobs = append(jobs, j)
	}

	runs := make([]*groundRun, len(jobs))
	errs := make([]error, len(jobs))
	ground := func(i int) {
		runs[i], errs[i] = g.runConstraintJob(jobs[i])
	}
	workers := g.n.groundWorkers()
	if workers > 1 && len(jobs) > 1 {
		runLimited(len(jobs), workers, ground)
	} else {
		for i := range jobs {
			ground(i)
		}
	}
	for i, j := range jobs {
		if errs[i] != nil {
			return errs[i]
		}
		for _, e := range runs[i].reqs {
			g.model.Require(e)
		}
		g.noteCacheRun(j.ri, j.rule, runs[i])
	}
	return nil
}

// constraintJob is one solver constraint rule prepared for grounding: the
// compiled head seeding plus the body plan.
type constraintJob struct {
	ri    int
	rule  *colog.Rule
	plan  *groundPlan
	seed  []argOp
	heads []symTuple
}

// buildConstraintJob compiles the head seeding — binding the head tuple's
// values into the frame, with ground-equality checks for constants and
// repeated variables — and plans the rule body.
func (g *grounder) buildConstraintJob(ri int, rule *colog.Rule) (*constraintJob, error) {
	label := ruleName(rule)
	slots := g.slotsFor(rule)
	seedBound := map[string]bool{}
	seed := make([]argOp, len(rule.Head.Args))
	for ai, arg := range rule.Head.Args {
		switch t := arg.(type) {
		case *colog.VarTerm:
			if seedBound[t.Name] {
				seed[ai] = argOp{kind: argCheck, slot: slots.slotOf(t.Name)}
			} else {
				seed[ai] = argOp{kind: argBind, slot: slots.slotOf(t.Name)}
				seedBound[t.Name] = true
			}
		case *colog.ConstTerm:
			seed[ai] = argOp{kind: argConst, val: t.Val}
		default:
			return nil, everrf(label, "unsupported head argument %s", arg)
		}
	}
	plan, err := g.planGroundBody(rule, seedBound)
	if err != nil {
		return nil, err
	}
	return &constraintJob{ri: ri, rule: rule, plan: plan, seed: seed, heads: g.sym[rule.Head.Pred]}, nil
}

// runConstraintJob grounds one constraint rule: for every symbolic head
// tuple, every body match must hold — expression literals become constraints
// via the symbolic filter path, and symbolic matches in matchSymRow post
// equality constraints.
func (g *grounder) runConstraintJob(j *constraintJob) (*groundRun, error) {
	run := g.newGroundRun(j.plan)
	for _, st := range j.heads {
		run.frame.reset()
		ok, err := g.seedHead(j.seed, st, run.frame)
		if err != nil {
			return run, err
		}
		if !ok {
			continue
		}
		if err := g.execPlan(run, j.plan, 0, func(*symFrame) error { return nil }); err != nil {
			return run, err
		}
	}
	return run, nil
}

// seedHead binds one symbolic head tuple into the frame for a constraint
// rule. Constants and repeated variables must match ground values exactly;
// any symbolic value at such a position skips the tuple (matching the seed
// grounder's behavior).
func (g *grounder) seedHead(seed []argOp, st symTuple, f *symFrame) (bool, error) {
	if len(seed) != len(st) {
		return false, nil
	}
	for i := range seed {
		op := &seed[i]
		switch op.kind {
		case argBind:
			f.bind(op.slot, st[i])
		case argCheck:
			prev := f.vals[op.slot]
			if prev.isSym() || st[i].isSym() || !prev.val.Equal(st[i].val) {
				return false, nil
			}
		case argConst:
			if st[i].isSym() || !op.val.Equal(st[i].val) {
				return false, nil
			}
		}
	}
	return true, nil
}

// setGoal locates the objective among the grounded tuples and installs it.
func (g *grounder) setGoal() error {
	objective, found, err := g.computeGoal()
	if err != nil {
		return err
	}
	if !found {
		// No goal tuple derived (e.g. no interfering pairs for the link
		// under negotiation): degrade to a satisfy problem over the posted
		// constraints.
		return nil
	}
	if g.n.res.Program.Goal.Sense == colog.GoalMinimize {
		g.model.Minimize(objective)
	} else {
		g.model.Maximize(objective)
	}
	return nil
}

// installGoal is setGoal's incremental twin: it re-derives the objective
// and swaps it in only when it actually changed, so a tick whose goal tuple
// re-derives to the same cached expression keeps the model's search
// metadata valid.
func (g *grounder) installGoal() error {
	objective, found, err := g.computeGoal()
	if err != nil {
		return err
	}
	sense := solver.Satisfy
	if found {
		if g.n.res.Program.Goal.Sense == colog.GoalMinimize {
			sense = solver.Minimize
		} else {
			sense = solver.Maximize
		}
	} else {
		objective = nil
	}
	g.model.SetObjective(objective, sense)
	return nil
}

// computeGoal locates the objective expression among the grounded tuples of
// the goal predicate, binding g.genv as a side effect. found is false for
// satisfy programs and when no tuple matches the goal atom.
func (g *grounder) computeGoal() (*solver.Expr, bool, error) {
	goal := g.n.res.Program.Goal
	if goal == nil || goal.Sense == colog.GoalSatisfy {
		return nil, false, nil
	}
	rows, err := g.rowsFor(goal.Atom.Pred)
	if err != nil {
		return nil, false, everrf("goal", "%v", err)
	}
	var objective *solver.Expr
	found := false
	for _, st := range rows {
		env := map[string]gval{}
		ok := true
		var objVal gval
		for i, arg := range goal.Atom.Args {
			v, isVar := arg.(*colog.VarTerm)
			if !isVar {
				if c, isConst := arg.(*colog.ConstTerm); isConst && !st[i].isSym() && c.Val.Equal(st[i].val) {
					continue
				}
				ok = false
				break
			}
			if v.Name == goal.VarName {
				objVal = st[i]
				continue
			}
			if v.Loc && !st[i].isSym() && locAddr(st[i].val) != g.n.Addr {
				ok = false
				break
			}
			env[v.Name] = st[i]
		}
		if !ok {
			continue
		}
		if found {
			return nil, false, everrf("goal", "multiple tuples match goal atom %s", goal.Atom)
		}
		found = true
		e, err := g.toExpr(objVal, "goal", nil)
		if err != nil {
			return nil, false, err
		}
		objective = e
		g.genv = map[string]colog.Value{}
		for k, gv := range env {
			if !gv.isSym() {
				g.genv[k] = gv.val
			}
		}
	}
	return objective, found, nil
}
