package core

import (
	"math"
	"sort"

	"repro/internal/colog"
)

// aggState maintains the incremental view of one aggregate rule: per group,
// the multiset of contributed values and the currently emitted head tuple.
// On every body-match delta the aggregate is recomputed and the head tuple
// replaced (delete old, insert new) — the incremental view maintenance the
// paper inherits from declarative networking.
type aggState struct {
	fn     colog.AggFunc
	groups map[string]*aggGroup
	// Scratch buffers so per-delta group lookups allocate nothing.
	gvScratch  []colog.Value
	keyScratch []byte
}

type aggGroup struct {
	groupVals []colog.Value // head arguments except the aggregate position
	items     map[string]*aggItem
	total     int
	emitted   *Tuple // head tuple currently visible, nil if none
	// Incremental accumulators, exact while every contributed value is an
	// integer (intOnly); SUM/SUMABS then fold in O(1) per delta instead of
	// rescanning the multiset. A non-integer contribution freezes the
	// accumulators and falls back to recomputation. Only the int64 sums
	// are maintained: float accumulators would suffer cancellation on
	// retraction (e.g. STDEV mixing huge and small values), so AVG/STDEV
	// always recompute from the multiset.
	intOnly bool
	sumI    int64
	sumAbsI int64
}

type aggItem struct {
	val   colog.Value
	count int
}

// fold updates the incremental accumulators for one contribution.
func (g *aggGroup) fold(v colog.Value, sign int) {
	if !g.intOnly {
		return
	}
	if v.Kind != colog.KindInt {
		g.intOnly = false
		return
	}
	a := v.I
	if a < 0 {
		a = -a
	}
	if sign > 0 {
		g.sumI += v.I
		g.sumAbsI += a
	} else {
		g.sumI -= v.I
		g.sumAbsI -= a
	}
}

// computeFast folds the group from its accumulators when exact, reporting
// ok=false when the generic recomputation is needed (non-integer values, or
// the aggregates that need the full multiset).
func (g *aggGroup) computeFast(fn colog.AggFunc) (colog.Value, bool) {
	switch fn {
	case colog.AggCount:
		return colog.IntVal(int64(g.total)), true
	case colog.AggUnique:
		return colog.IntVal(int64(len(g.items))), true
	}
	if !g.intOnly {
		return colog.Value{}, false
	}
	switch fn {
	case colog.AggSum:
		return colog.IntVal(g.sumI), true
	case colog.AggSumAbs:
		return colog.IntVal(g.sumAbsI), true
	}
	return colog.Value{}, false
}

// updateAggregate folds one body match (sign +1/-1) into the rule's
// aggregate state and re-emits the group's head tuple.
func (n *Node) updateAggregate(p *plan, f *bindFrame, sign int) error {
	if len(p.headAggs) != 1 {
		return everrf(ruleName(p.rule), "exactly one aggregate per head is supported, got %d", len(p.headAggs))
	}
	aggPos := p.headAggs[0]
	aggTerm := p.rule.Head.Args[aggPos].(*colog.AggTerm)

	st := n.aggs[p.ruleIdx]
	if st == nil {
		st = &aggState{fn: aggTerm.Func, groups: map[string]*aggGroup{}}
		n.aggs[p.ruleIdx] = st
	}

	// Group key: all head arguments except the aggregate.
	groupVals := st.gvScratch[:0]
	for i, arg := range p.rule.Head.Args {
		if i == aggPos {
			continue
		}
		v, err := evalGround(arg, f)
		if err != nil {
			return everrf(ruleName(p.rule), "aggregate group argument %d: %v", i, err)
		}
		groupVals = append(groupVals, v)
	}
	st.gvScratch = groupVals
	aggVal, ok := f.lookupVar(aggTerm.Over)
	if !ok {
		return everrf(ruleName(p.rule), "aggregate variable %s unbound", aggTerm.Over)
	}

	st.keyScratch = appendValsKey(st.keyScratch[:0], groupVals)
	gkb := st.keyScratch
	g := st.groups[string(gkb)]
	if g == nil {
		if sign < 0 {
			return nil // retracting from an empty group
		}
		g = &aggGroup{
			groupVals: append([]colog.Value(nil), groupVals...),
			items:     map[string]*aggItem{},
			intOnly:   true,
		}
		st.groups[string(gkb)] = g
	}
	st.keyScratch = aggVal.AppendKey(st.keyScratch)
	ikb := st.keyScratch[len(gkb):]
	item := g.items[string(ikb)]
	if sign > 0 {
		if item == nil {
			g.items[string(ikb)] = &aggItem{val: aggVal, count: 1}
		} else {
			item.count++
		}
		g.total++
	} else {
		if item == nil {
			return nil
		}
		item.count--
		g.total--
		if item.count <= 0 {
			delete(g.items, string(ikb))
		}
	}
	g.fold(aggVal, sign)

	// Re-emit.
	var newTuple *Tuple
	if g.total > 0 {
		out, ok := g.computeFast(st.fn)
		if !ok {
			var err error
			out, err = computeAggregate(st.fn, g.items)
			if err != nil {
				return everrf(ruleName(p.rule), "aggregate: %v", err)
			}
		}
		vals := make([]colog.Value, len(p.rule.Head.Args))
		gi := 0
		for i := range p.rule.Head.Args {
			if i == aggPos {
				vals[i] = out
			} else {
				vals[i] = g.groupVals[gi]
				gi++
			}
		}
		t := Tuple{p.rule.Head.Pred, vals}
		newTuple = &t
	}
	if g.emitted != nil && newTuple != nil && valsEqual(g.emitted.Vals, newTuple.Vals) {
		return nil // value unchanged
	}
	if g.emitted != nil {
		if err := n.route(*g.emitted, -1); err != nil {
			return err
		}
		g.emitted = nil
	}
	if newTuple != nil {
		if err := n.route(*newTuple, +1); err != nil {
			return err
		}
		g.emitted = newTuple
	} else {
		delete(st.groups, string(gkb))
	}
	return nil
}

// computeAggregate folds a multiset into a single value.
func computeAggregate(fn colog.AggFunc, items map[string]*aggItem) (colog.Value, error) {
	switch fn {
	case colog.AggCount:
		n := 0
		for _, it := range items {
			n += it.count
		}
		return colog.IntVal(int64(n)), nil
	case colog.AggUnique:
		return colog.IntVal(int64(len(items))), nil
	}

	allInt := true
	for _, it := range items {
		if !it.val.IsNumeric() {
			return colog.Value{}, everrf(fn.String(), "non-numeric value %s", it.val)
		}
		if it.val.Kind != colog.KindInt {
			allInt = false
		}
	}
	switch fn {
	case colog.AggSum:
		if allInt {
			var s int64
			for _, it := range items {
				s += it.val.I * int64(it.count)
			}
			return colog.IntVal(s), nil
		}
		s := 0.0
		for _, it := range items {
			s += it.val.Num() * float64(it.count)
		}
		return colog.FloatVal(s), nil
	case colog.AggSumAbs:
		if allInt {
			var s int64
			for _, it := range items {
				a := it.val.I
				if a < 0 {
					a = -a
				}
				s += a * int64(it.count)
			}
			return colog.IntVal(s), nil
		}
		s := 0.0
		for _, it := range items {
			s += math.Abs(it.val.Num()) * float64(it.count)
		}
		return colog.FloatVal(s), nil
	case colog.AggMin, colog.AggMax:
		var best colog.Value
		first := true
		for _, it := range items {
			if first || (fn == colog.AggMin && it.val.Num() < best.Num()) || (fn == colog.AggMax && it.val.Num() > best.Num()) {
				best = it.val
				first = false
			}
		}
		return best, nil
	case colog.AggAvg:
		s, n := 0.0, 0
		for _, it := range items {
			s += it.val.Num() * float64(it.count)
			n += it.count
		}
		return colog.FloatVal(s / float64(n)), nil
	case colog.AggStdev:
		s, sq, n := 0.0, 0.0, 0
		for _, it := range items {
			x := it.val.Num()
			s += x * float64(it.count)
			sq += x * x * float64(it.count)
			n += it.count
		}
		mean := s / float64(n)
		variance := sq/float64(n) - mean*mean
		if variance < 0 {
			variance = 0
		}
		return colog.FloatVal(math.Sqrt(variance)), nil
	}
	return colog.Value{}, everrf(fn.String(), "unsupported aggregate")
}

// sortedVals is a test helper ordering a value multiset deterministically.
func sortedVals(items map[string]*aggItem) []colog.Value {
	keys := make([]string, 0, len(items))
	for k := range items {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]colog.Value, 0, len(keys))
	for _, k := range keys {
		for i := 0; i < items[k].count; i++ {
			out = append(out, items[k].val)
		}
	}
	return out
}
