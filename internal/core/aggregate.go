package core

import (
	"math"
	"sort"

	"repro/internal/colog"
)

// aggState maintains the incremental view of one aggregate rule: per group,
// the multiset of contributed values and the currently emitted head tuple.
// On every body-match delta the aggregate is recomputed and the head tuple
// replaced (delete old, insert new) — the incremental view maintenance the
// paper inherits from declarative networking.
type aggState struct {
	fn     colog.AggFunc
	groups map[string]*aggGroup
}

type aggGroup struct {
	groupVals []colog.Value // head arguments except the aggregate position
	items     map[string]*aggItem
	total     int
	emitted   *Tuple // head tuple currently visible, nil if none
}

type aggItem struct {
	val   colog.Value
	count int
}

// updateAggregate folds one body match (sign +1/-1) into the rule's
// aggregate state and re-emits the group's head tuple.
func (n *Node) updateAggregate(p *plan, env map[string]colog.Value, sign int) error {
	if len(p.headAggs) != 1 {
		return everrf(ruleName(p.rule), "exactly one aggregate per head is supported, got %d", len(p.headAggs))
	}
	aggPos := p.headAggs[0]
	aggTerm := p.rule.Head.Args[aggPos].(*colog.AggTerm)

	st := n.aggs[p.ruleIdx]
	if st == nil {
		st = &aggState{fn: aggTerm.Func, groups: map[string]*aggGroup{}}
		n.aggs[p.ruleIdx] = st
	}

	// Group key: all head arguments except the aggregate.
	groupVals := make([]colog.Value, 0, len(p.rule.Head.Args)-1)
	for i, arg := range p.rule.Head.Args {
		if i == aggPos {
			continue
		}
		v, err := evalGround(arg, env)
		if err != nil {
			return everrf(ruleName(p.rule), "aggregate group argument %d: %v", i, err)
		}
		groupVals = append(groupVals, v)
	}
	aggVal, ok := env[aggTerm.Over]
	if !ok {
		return everrf(ruleName(p.rule), "aggregate variable %s unbound", aggTerm.Over)
	}

	gk := valsKey(groupVals)
	g := st.groups[gk]
	if g == nil {
		if sign < 0 {
			return nil // retracting from an empty group
		}
		g = &aggGroup{groupVals: groupVals, items: map[string]*aggItem{}}
		st.groups[gk] = g
	}
	ik := aggVal.Key()
	item := g.items[ik]
	if sign > 0 {
		if item == nil {
			g.items[ik] = &aggItem{val: aggVal, count: 1}
		} else {
			item.count++
		}
		g.total++
	} else {
		if item == nil {
			return nil
		}
		item.count--
		g.total--
		if item.count <= 0 {
			delete(g.items, ik)
		}
	}

	// Re-emit.
	var newTuple *Tuple
	if g.total > 0 {
		out, err := computeAggregate(st.fn, g.items)
		if err != nil {
			return everrf(ruleName(p.rule), "aggregate: %v", err)
		}
		vals := make([]colog.Value, len(p.rule.Head.Args))
		gi := 0
		for i := range p.rule.Head.Args {
			if i == aggPos {
				vals[i] = out
			} else {
				vals[i] = g.groupVals[gi]
				gi++
			}
		}
		t := Tuple{p.rule.Head.Pred, vals}
		newTuple = &t
	}
	if g.emitted != nil && newTuple != nil && g.emitted.Key() == newTuple.Key() {
		return nil // value unchanged
	}
	if g.emitted != nil {
		if err := n.route(*g.emitted, -1); err != nil {
			return err
		}
		g.emitted = nil
	}
	if newTuple != nil {
		if err := n.route(*newTuple, +1); err != nil {
			return err
		}
		g.emitted = newTuple
	} else {
		delete(st.groups, gk)
	}
	return nil
}

// computeAggregate folds a multiset into a single value.
func computeAggregate(fn colog.AggFunc, items map[string]*aggItem) (colog.Value, error) {
	switch fn {
	case colog.AggCount:
		n := 0
		for _, it := range items {
			n += it.count
		}
		return colog.IntVal(int64(n)), nil
	case colog.AggUnique:
		return colog.IntVal(int64(len(items))), nil
	}

	allInt := true
	var vals []colog.Value
	var counts []int
	for _, it := range items {
		if !it.val.IsNumeric() {
			return colog.Value{}, everrf(fn.String(), "non-numeric value %s", it.val)
		}
		if it.val.Kind != colog.KindInt {
			allInt = false
		}
		vals = append(vals, it.val)
		counts = append(counts, it.count)
	}
	switch fn {
	case colog.AggSum:
		if allInt {
			var s int64
			for i, v := range vals {
				s += v.I * int64(counts[i])
			}
			return colog.IntVal(s), nil
		}
		s := 0.0
		for i, v := range vals {
			s += v.Num() * float64(counts[i])
		}
		return colog.FloatVal(s), nil
	case colog.AggSumAbs:
		if allInt {
			var s int64
			for i, v := range vals {
				a := v.I
				if a < 0 {
					a = -a
				}
				s += a * int64(counts[i])
			}
			return colog.IntVal(s), nil
		}
		s := 0.0
		for i, v := range vals {
			s += math.Abs(v.Num()) * float64(counts[i])
		}
		return colog.FloatVal(s), nil
	case colog.AggMin, colog.AggMax:
		best := vals[0]
		for _, v := range vals[1:] {
			if (fn == colog.AggMin && v.Num() < best.Num()) || (fn == colog.AggMax && v.Num() > best.Num()) {
				best = v
			}
		}
		return best, nil
	case colog.AggAvg:
		s, n := 0.0, 0
		for i, v := range vals {
			s += v.Num() * float64(counts[i])
			n += counts[i]
		}
		return colog.FloatVal(s / float64(n)), nil
	case colog.AggStdev:
		s, sq, n := 0.0, 0.0, 0
		for i, v := range vals {
			x := v.Num()
			s += x * float64(counts[i])
			sq += x * x * float64(counts[i])
			n += counts[i]
		}
		mean := s / float64(n)
		variance := sq/float64(n) - mean*mean
		if variance < 0 {
			variance = 0
		}
		return colog.FloatVal(math.Sqrt(variance)), nil
	}
	return colog.Value{}, everrf(fn.String(), "unsupported aggregate")
}

// sortedVals is a test helper ordering a value multiset deterministically.
func sortedVals(items map[string]*aggItem) []colog.Value {
	keys := make([]string, 0, len(items))
	for k := range items {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]colog.Value, 0, len(keys))
	for _, k := range keys {
		for i := 0; i < items[k].count; i++ {
			out = append(out, items[k].val)
		}
	}
	return out
}
