package core

import (
	"strings"
	"testing"

	"repro/internal/solver"
)

// TestSolveErrorUnboundParam: solving a program with an unbound named
// parameter must fail with a helpful message.
func TestSolveErrorUnboundParam(t *testing.T) {
	n := newTestNode(t, `
var assign(V,X) forall cand(V).
r1 cand(V) <- vm(V).
c1 assign(V,X) -> X<=limit.
`, Config{})
	n.Insert("vm", sval("v1"))
	_, err := n.Solve(SolveOptions{})
	if err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("err = %v, want unbound parameter mention", err)
	}
}

// TestSolveErrorEmptyDomainTable: a domain table with no rows is an error.
func TestSolveErrorEmptyDomainTable(t *testing.T) {
	n := newTestNode(t, `
var assign(V,C) forall cand(V) domain pool.
r1 cand(V) <- vm(V).
`, Config{})
	n.Insert("vm", sval("v1"))
	_, err := n.Solve(SolveOptions{})
	if err == nil || !strings.Contains(err.Error(), "pool") {
		t.Fatalf("err = %v, want empty-domain-table error", err)
	}
}

// TestSolveErrorNonIntegerDomainTable.
func TestSolveErrorNonIntegerDomainTable(t *testing.T) {
	n := newTestNode(t, `
var assign(V,C) forall cand(V) domain pool.
r1 cand(V) <- vm(V).
`, Config{})
	n.Insert("pool", sval("not-an-int"))
	n.Insert("vm", sval("v1"))
	_, err := n.Solve(SolveOptions{})
	if err == nil || !strings.Contains(err.Error(), "non-integer") {
		t.Fatalf("err = %v, want non-integer domain error", err)
	}
}

// TestSolveErrorMultipleGoalTuples: an ambiguous objective is rejected.
func TestSolveErrorMultipleGoalTuples(t *testing.T) {
	n := newTestNode(t, `
goal minimize C in cost(G,C).
var assign(V,X) forall cand(V).
r1 cand(V) <- vm(V).
d1 cost(G,SUM<X>) <- assign(V,X), groupOf(V,G).
`, Config{})
	n.Insert("vm", sval("v1"))
	n.Insert("vm", sval("v2"))
	n.Insert("groupOf", sval("v1"), sval("g1"))
	n.Insert("groupOf", sval("v2"), sval("g2"))
	_, err := n.Solve(SolveOptions{})
	if err == nil || !strings.Contains(err.Error(), "multiple tuples") {
		t.Fatalf("err = %v, want multiple-goal-tuples error", err)
	}
}

// TestSolveSatisfyGoalFallback: when no goal tuple is derivable the solve
// degrades to satisfy over the posted constraints.
func TestSolveSatisfyGoalFallback(t *testing.T) {
	n := newTestNode(t, `
goal minimize C in cost(C).
var assign(V,X) forall cand(V).
r1 cand(V) <- vm(V).
d1 cost(SUM<X>) <- assign(V,X), heavy(V).
c1 assign(V,X) -> X==1.
`, Config{})
	n.Insert("vm", sval("v1"))
	// No heavy rows -> no cost tuple -> satisfy.
	res, err := n.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != solver.StatusOptimal || res.HasGoal {
		t.Fatalf("res = %+v, want satisfy-style optimal without goal", res)
	}
	if len(res.Assignments) != 1 || res.Assignments[0].Vals[1].I != 1 {
		t.Fatalf("constraint not enforced in satisfy fallback: %v", res.Assignments)
	}
}

// TestSolveGoalSatisfyProgram: a goal satisfy program works end to end.
func TestSolveGoalSatisfyProgram(t *testing.T) {
	n := newTestNode(t, `
goal satisfy assign(V,X).
var assign(V,X) forall cand(V) domain [2,5].
r1 cand(V) <- vm(V).
c1 assign(V,X) -> X>=4.
`, Config{})
	n.Insert("vm", sval("v1"))
	res, err := n.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible() || res.Assignments[0].Vals[1].I < 4 {
		t.Fatalf("satisfy program: %+v", res)
	}
}

// TestGroundAggregateOverGroundValues: aggregates whose inputs happen to be
// fully ground fold to constants during grounding.
func TestGroundAggregateOverGroundValues(t *testing.T) {
	n := newTestNode(t, `
goal minimize C in obj(C).
var pick(V,X) forall cand(V).
r1 cand(V) <- vm(V).
d1 baseLoad(SUM<L>) <- fixed(H,L).
d2 picked(SUM<X>) <- pick(V,X).
d3 obj(C) <- baseLoad(B), picked(P), C==B+P.
`, Config{})
	n.Insert("vm", sval("v1"))
	n.Insert("fixed", sval("h1"), ival(10))
	n.Insert("fixed", sval("h2"), ival(5))
	res, err := n.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Minimum: pick nothing -> 15.
	if res.Objective != 15 {
		t.Fatalf("objective = %v, want 15", res.Objective)
	}
}

// TestConstraintAcrossTwoSolverTables: a constraint rule whose body
// references another solver table posts cross-variable constraints.
func TestConstraintAcrossTwoSolverTables(t *testing.T) {
	n := newTestNode(t, `
goal minimize C in obj(C).
var a(K,X) forall keys(K) domain [0,5].
var b(K,Y) forall keys(K) domain [0,5].
c1 a(K,X) -> b(K,Y), X+Y>=4.
d1 obj(SUM<S>) <- a(K,X), weight(K,W), S==X*W.
`, Config{})
	n.Insert("keys", sval("k"))
	n.Insert("weight", sval("k"), ival(1))
	res, err := n.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible() {
		t.Fatalf("status = %v", res.Status)
	}
	var x, y int64
	for _, a := range res.Assignments {
		if a.Pred == "a" {
			x = a.Vals[1].I
		} else {
			y = a.Vals[1].I
		}
	}
	if x+y < 4 {
		t.Fatalf("cross-table constraint violated: x=%d y=%d", x, y)
	}
}
