package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/analysis"
	"repro/internal/colog"
	"repro/internal/sim"
	"repro/internal/transport"
)

// Cluster manages a set of Cologne instances executing one analyzed program
// over a shared transport — the paper's distributed deployment mode. It
// bundles the wiring the experiment harnesses need: node construction, fact
// routing by location attribute, and (in simulation mode) time advancement.
type Cluster struct {
	nodes map[string]*Node
	order []string
	res   *analysis.Result
	sched *sim.Scheduler
	tr    transport.Transport
}

// NewSimCluster builds a cluster of the given node addresses over a
// simulated network with the given one-way latency. The scheduler is
// returned for experiment-driven time control via Cluster.Scheduler.
func NewSimCluster(addrs []string, res *analysis.Result, cfg Config, latency time.Duration) (*Cluster, error) {
	sched := sim.NewScheduler()
	return newCluster(addrs, res, cfg, sched, transport.NewSim(sched, latency))
}

// NewUDPCluster builds a cluster over real UDP sockets (the paper's
// implementation mode). Call Close when done.
func NewUDPCluster(addrs []string, res *analysis.Result, cfg Config) (*Cluster, error) {
	return newCluster(addrs, res, cfg, nil, transport.NewUDP())
}

func newCluster(addrs []string, res *analysis.Result, cfg Config, sched *sim.Scheduler, tr transport.Transport) (*Cluster, error) {
	c := &Cluster{
		nodes: map[string]*Node{},
		res:   res,
		sched: sched,
		tr:    tr,
	}
	for _, addr := range addrs {
		if _, dup := c.nodes[addr]; dup {
			return nil, fmt.Errorf("core: duplicate cluster address %q", addr)
		}
		n, err := NewNode(addr, res, cfg, tr)
		if err != nil {
			return nil, err
		}
		c.nodes[addr] = n
		c.order = append(c.order, addr)
	}
	sort.Strings(c.order)
	return c, nil
}

// Node returns the instance at addr, or nil.
func (c *Cluster) Node(addr string) *Node { return c.nodes[addr] }

// Addrs lists the cluster's node addresses, sorted.
func (c *Cluster) Addrs() []string { return append([]string(nil), c.order...) }

// Scheduler returns the simulation scheduler (nil for UDP clusters).
func (c *Cluster) Scheduler() *sim.Scheduler { return c.sched }

// Transport returns the underlying transport (for byte counters).
func (c *Cluster) Transport() transport.Transport { return c.tr }

// Insert routes a fact to the node named by the table's location attribute;
// tables without a location column reject cluster-level inserts.
func (c *Cluster) Insert(pred string, vals ...colog.Value) error {
	n, err := c.owner(pred, vals)
	if err != nil {
		return err
	}
	return n.Insert(pred, vals...)
}

// Delete routes a retraction like Insert.
func (c *Cluster) Delete(pred string, vals ...colog.Value) error {
	n, err := c.owner(pred, vals)
	if err != nil {
		return err
	}
	return n.Delete(pred, vals...)
}

func (c *Cluster) owner(pred string, vals []colog.Value) (*Node, error) {
	ti := c.res.Tables[pred]
	if ti == nil {
		return nil, everrf(pred, "unknown predicate")
	}
	if ti.LocCol < 0 {
		return nil, everrf(pred, "predicate has no location attribute; insert on a specific node instead")
	}
	if ti.LocCol >= len(vals) {
		return nil, everrf(pred, "arity mismatch")
	}
	addr := locAddr(vals[ti.LocCol])
	n := c.nodes[addr]
	if n == nil {
		return nil, everrf(pred, "no cluster node at %q", addr)
	}
	return n, nil
}

// Settle advances simulated time until the network drains (no pending
// events) or the step budget is exhausted. For UDP clusters it sleeps
// briefly instead.
func (c *Cluster) Settle() {
	if c.sched != nil {
		c.sched.RunUntilIdle(1_000_000)
		return
	}
	time.Sleep(50 * time.Millisecond)
}

// SolveAll runs a COP at every node in address order, settling the network
// between solves; it returns the per-node results.
func (c *Cluster) SolveAll(opts SolveOptions) (map[string]*SolveResult, error) {
	out := map[string]*SolveResult{}
	for _, addr := range c.order {
		res, err := c.nodes[addr].Solve(opts)
		if err != nil {
			return out, fmt.Errorf("core: solve at %s: %w", addr, err)
		}
		out[addr] = res
		c.Settle()
	}
	return out, nil
}

// Rows gathers a table's rows from every node, tagged by address.
func (c *Cluster) Rows(pred string) map[string][][]colog.Value {
	out := map[string][][]colog.Value{}
	for _, addr := range c.order {
		if rows := c.nodes[addr].Rows(pred); len(rows) > 0 {
			out[addr] = rows
		}
	}
	return out
}

// Close releases transport resources (UDP sockets).
func (c *Cluster) Close() error {
	if c.tr != nil {
		return c.tr.Close()
	}
	return nil
}
