package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/colog"
	"repro/internal/sim"
	"repro/internal/transport"
)

const recoverySrc = `
goal minimize C in cost(@X,C).
var pick(@X,D,V) forall item(@X,D) domain [0,5].

d1 cost(@X,SUM<E>) <- pick(@X,D,V), w(@X,D,W), E==V*W.
d2 total(@X,SUM<V>) <- pick(@X,D,V).
c1 total(@X,V) -> need(@X,N), V>=N.

r1 got(@Y,X,D,V2) <- link(@X,Y), pick(@X,D,V), V2:=V.
`

func recoveryProgram(t testing.TB) *analysis.Result {
	t.Helper()
	prog, err := colog.Parse(recoverySrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.Analyze(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func recoveryConfig() Config {
	return Config{
		SolverPropagate: true,
		Keys:            map[string][]int{"got": {0, 1, 2}},
	}
}

func seedRecoveryNode(t testing.TB, n *Node, addr, next string) {
	t.Helper()
	for d, w := range []int64{2, 4} {
		dn := fmt.Sprintf("d%d", d)
		if err := n.Insert("item", sval(addr), sval(dn)); err != nil {
			t.Fatal(err)
		}
		if err := n.Insert("w", sval(addr), sval(dn), ival(w)); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Insert("need", sval(addr), ival(3)); err != nil {
		t.Fatal(err)
	}
	if next != "" {
		if err := n.Insert("link", sval(addr), sval(next)); err != nil {
			t.Fatal(err)
		}
	}
}

// nodeState renders everything observable about a node's evaluation state:
// all table rows, sorted.
func nodeState(n *Node) string {
	var sb strings.Builder
	names := n.TableNames()
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	for _, name := range names {
		for _, row := range n.Rows(name) {
			sb.WriteString(NewTuple(name, row...).String())
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// TestCheckpointRoundTrip: exporting a node's state and restoring it must
// reproduce the node exactly — same rows, and byte-identical re-export —
// and the restored node must behave identically under further updates and
// solves (arrival-order seqs, aggregate views, and materialization memory
// all survive).
func TestCheckpointRoundTrip(t *testing.T) {
	res := recoveryProgram(t)
	n, err := NewNode("a", res, recoveryConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	seedRecoveryNode(t, n, "a", "")
	if _, err := n.Solve(SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	// Churn: a keyed replace and a delete/re-insert to exercise seq
	// preservation and freed-seq tombstones.
	if err := n.Insert("need", sval("a"), ival(5)); err != nil {
		t.Fatal(err)
	}
	if err := n.Delete("w", sval("a"), sval("d0"), ival(2)); err != nil {
		t.Fatal(err)
	}
	if err := n.Insert("w", sval("a"), sval("d0"), ival(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Solve(SolveOptions{}); err != nil {
		t.Fatal(err)
	}

	cp, err := n.ExportCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreNode("a", res, recoveryConfig(), nil, cp)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := nodeState(restored), nodeState(n); got != want {
		t.Fatalf("restored state diverged:\n--- original\n%s--- restored\n%s", want, got)
	}
	cp2, err := restored.ExportCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if string(cp2) != string(cp) {
		t.Fatal("re-exported checkpoint is not byte-identical")
	}

	// Behavioral equivalence: the same update script and solve must take
	// both nodes to identical states with identical solver traces.
	for _, node := range []*Node{n, restored} {
		if err := node.Insert("need", sval("a"), ival(6)); err != nil {
			t.Fatal(err)
		}
		if err := node.Delete("item", sval("a"), sval("d1")); err != nil {
			t.Fatal(err)
		}
		if err := node.Insert("item", sval("a"), sval("d1")); err != nil {
			t.Fatal(err)
		}
	}
	r1, err := n.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := restored.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Objective != r2.Objective || r1.Stats.Nodes != r2.Stats.Nodes {
		t.Fatalf("post-restore solve diverged: objective %g/%g nodes %d/%d",
			r1.Objective, r2.Objective, r1.Stats.Nodes, r2.Stats.Nodes)
	}
	if got, want := nodeState(restored), nodeState(n); got != want {
		t.Fatalf("post-restore behavior diverged:\n--- original\n%s--- restored\n%s", want, got)
	}
}

// TestCheckpointRejectsMalformed: corrupt checkpoints error, never panic.
func TestCheckpointRejectsMalformed(t *testing.T) {
	res := recoveryProgram(t)
	n, err := NewNode("a", res, recoveryConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	seedRecoveryNode(t, n, "a", "")
	cp, err := n.ExportCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]byte{
		nil,
		{},
		{0xFF},
		cp[:1],
		cp[:len(cp)/2],
		append(append([]byte(nil), cp...), 0x01),
	}
	for i, data := range bad {
		if _, err := RestoreNode("a", res, recoveryConfig(), nil, data); err == nil {
			t.Fatalf("malformed checkpoint %d accepted", i)
		}
	}
}

// TestResyncPullsLostRows: when a subscriber loses shipped decisions (down
// while the publisher updated), the digest exchange pulls exactly the
// missing rows and the resynced node ends byte-identical to a subscriber
// that never failed.
func TestResyncPullsLostRows(t *testing.T) {
	res := recoveryProgram(t)
	sched := sim.NewScheduler()
	tr := transport.NewSim(sched, time.Millisecond)

	pub, err := NewNode("a", res, recoveryConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := NewNode("b", res, recoveryConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	seedRecoveryNode(t, pub, "a", "b")
	seedRecoveryNode(t, sub, "b", "")
	if _, err := pub.Solve(SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	sched.RunUntilIdle(1000)
	if len(sub.Rows("got")) == 0 {
		t.Fatal("no replicated decisions before failure")
	}
	cp, err := sub.ExportCheckpoint()
	if err != nil {
		t.Fatal(err)
	}

	// The subscriber goes down; the publisher re-decides and the update is
	// lost in flight.
	tr.SetNodeDown("b", true)
	if err := pub.Insert("need", sval("a"), ival(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Solve(SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	sched.RunUntilIdle(1000)

	// An uninterrupted subscriber for comparison: same program, same seed,
	// receiving the update live.
	live, err := NewNode("c", res, recoveryConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	seedRecoveryNode(t, live, "c", "")
	if err := pub.Insert("link", sval("a"), sval("c")); err != nil {
		t.Fatal(err)
	}
	sched.RunUntilIdle(1000)

	// Restart from the checkpoint and resync.
	tr.SetNodeDown("b", false)
	restored, err := RestoreNode("b", res, recoveryConfig(), tr, cp)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.StartResync([]string{"a"}); err != nil {
		t.Fatal(err)
	}
	sched.RunUntilIdle(1000)
	if restored.ResyncPending() != 0 {
		t.Fatalf("resync still pending against %d peers", restored.ResyncPending())
	}
	st := restored.ResyncStats()
	if st.RowsPulled == 0 || st.BytesPulled == 0 {
		t.Fatalf("no resync work recorded: %+v", st)
	}

	// The resynced subscriber sees exactly what the live one sees (modulo
	// its own address column).
	norm := func(n *Node) string {
		var sb strings.Builder
		for _, row := range n.Rows("got") {
			sb.WriteString(fmt.Sprintf("%s|%s|%d\n", row[1].S, row[2].S, row[3].I))
		}
		return sb.String()
	}
	if got, want := norm(restored), norm(live); got != want {
		t.Fatalf("resynced state diverged from live subscriber:\n--- live\n%s--- resynced\n%s", want, got)
	}

	// A second resync finds nothing to do: digests match.
	before := restored.ResyncStats().RowsPulled
	if err := restored.StartResync([]string{"a"}); err != nil {
		t.Fatal(err)
	}
	sched.RunUntilIdle(1000)
	if after := restored.ResyncStats().RowsPulled; after != before {
		t.Fatalf("idempotent resync pulled %d rows", after-before)
	}
}

// TestResyncRollsBackStaleRows: the reverse direction — a peer holding
// rows that only the failed instance had asserted (sent after the
// checkpoint being restored) rolls them back during the exchange.
func TestResyncRollsBackStaleRows(t *testing.T) {
	res := recoveryProgram(t)
	sched := sim.NewScheduler()
	tr := transport.NewSim(sched, time.Millisecond)

	pub, err := NewNode("a", res, recoveryConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := NewNode("b", res, recoveryConfig(), tr)
	if err != nil {
		t.Fatal(err)
	}
	seedRecoveryNode(t, pub, "a", "b")
	seedRecoveryNode(t, sub, "b", "")

	// Checkpoint the publisher BEFORE it decides, then let it decide and
	// replicate: the subscriber now holds rows the checkpointed publisher
	// state never asserted.
	cp, err := pub.ExportCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Solve(SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	sched.RunUntilIdle(1000)
	if len(sub.Rows("got")) == 0 {
		t.Fatal("no replicated decisions")
	}

	// The publisher crashes back to the stale checkpoint and resyncs: the
	// bidirectional exchange must delete the subscriber's phantom rows.
	restored, err := RestoreNode("a", res, recoveryConfig(), tr, cp)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.StartResync([]string{"b"}); err != nil {
		t.Fatal(err)
	}
	sched.RunUntilIdle(1000)
	if rows := sub.Rows("got"); len(rows) != 0 {
		t.Fatalf("subscriber kept %d rows the restored publisher never asserted", len(rows))
	}
}

// TestResyncLargeTableChunks: a resync whose authoritative row list
// exceeds the per-frame budget must arrive chunked across several frames
// and reconcile completely — the receiver assembles every chunk of the
// exchange (in index order) before treating the list as authoritative.
func TestResyncLargeTableChunks(t *testing.T) {
	prog, err := colog.Parse("r1 sink(@Y,X,S) <- src(@X,Y,S).\n")
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.Analyze(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	sched := sim.NewScheduler()
	tr := transport.NewSim(sched, time.Millisecond)
	pub, err := NewNode("a", res, Config{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewNode("b", res, Config{}, tr); err != nil {
		t.Fatal(err)
	}
	const rows = 3000
	filler := strings.Repeat("y", 40)
	for i := 0; i < rows; i++ {
		if err := pub.Insert("src", sval("a"), sval("b"), sval(fmt.Sprintf("%s-%04d", filler, i))); err != nil {
			t.Fatal(err)
		}
	}
	sched.RunUntilIdle(10 * rows)

	// The subscriber crashes cold (no checkpoint): a fresh instance with
	// nothing, pulling the publisher's full >60 KiB assertion state.
	fresh, err := newNode("b", res, Config{}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.StartResync([]string{"a"}); err != nil {
		t.Fatal(err)
	}
	sched.RunUntilIdle(10 * rows)
	if fresh.ResyncPending() != 0 {
		t.Fatalf("resync still pending against %d peers", fresh.ResyncPending())
	}
	if got := len(fresh.Rows("sink")); got != rows {
		t.Fatalf("resynced %d rows, want %d", got, rows)
	}
	st := fresh.ResyncStats()
	if st.RowsPulled != rows {
		t.Fatalf("RowsPulled = %d, want %d", st.RowsPulled, rows)
	}
	if st.BytesPulled <= maxBatchFrameBytes {
		t.Fatalf("response fit one frame (%d bytes) — the test did not exercise chunking", st.BytesPulled)
	}
	// A second exchange finds everything aligned.
	before := fresh.ResyncStats().RowsPulled
	if err := fresh.StartResync([]string{"a"}); err != nil {
		t.Fatal(err)
	}
	sched.RunUntilIdle(10 * rows)
	if after := fresh.ResyncStats().RowsPulled; after != before {
		t.Fatalf("idempotent resync pulled %d rows", after-before)
	}
}

// TestUDPBatchLargeOutboxSplits: a held outbox far beyond the 64 KiB UDP
// datagram limit must round-trip over the real-socket transport — the
// batcher splits it into frames that each fit a datagram. Regression for
// the unbounded MergeDeltaPayloads frame.
func TestUDPBatchLargeOutboxSplits(t *testing.T) {
	prog, err := colog.Parse("r1 sink(@Y,X,S) <- src(@X,Y,S).\n")
	if err != nil {
		t.Fatal(err)
	}
	res, err := analysis.Analyze(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := transport.NewUDP()
	defer tr.Close()
	cfg := Config{BatchDeltas: true}
	a, err := NewNode("a", res, cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNode("b", res, cfg, tr)
	if err != nil {
		t.Fatal(err)
	}

	const rows = 2000
	filler := strings.Repeat("x", 48)
	a.HoldOutbox(true)
	var outBytes int
	for i := 0; i < rows; i++ {
		s := fmt.Sprintf("%s-%04d", filler, i)
		outBytes += len(s)
		if err := a.Insert("src", sval("a"), sval("b"), sval(s)); err != nil {
			t.Fatal(err)
		}
	}
	a.HoldOutbox(false)
	if outBytes < 80*1024 {
		t.Fatalf("test outbox only %d bytes, want > 64 KiB of payload", outBytes)
	}
	if err := a.FlushOutbox(); err != nil {
		t.Fatalf("flush of oversized outbox failed: %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := len(b.Rows("sink")); got == rows {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("only %d/%d rows arrived over UDP", got, rows)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if b.LastError != nil {
		t.Fatalf("receiver error: %v", b.LastError)
	}
	st := tr.NodeStats("a")
	if st.MsgsSent < 2 {
		t.Fatalf("oversized batch sent as %d frame(s), want a split", st.MsgsSent)
	}
}

// FuzzDecodeDeltas: arbitrary payloads must decode cleanly or error —
// never panic — and every decoded delta must carry a valid sign and
// re-encode losslessly. Seeded with valid single and batch frames.
func FuzzDecodeDeltas(f *testing.F) {
	p1, _ := encodeDelta("p", []colog.Value{ival(7), sval("x"), colog.FloatVal(1.5), colog.BoolVal(true)}, 1)
	p2, _ := encodeDelta("q", []colog.Value{ival(-3)}, -1)
	f.Add(append([]byte(nil), p1...))
	if frames, err := MergeDeltaPayloads([][]byte{p1, p2}); err == nil {
		f.Add(frames[0])
	}
	f.Add([]byte{wireDeltaVersion})
	f.Add([]byte{wireBatchVersion, 0x02})
	f.Fuzz(func(t *testing.T, payload []byte) {
		wds, err := decodeDeltas(payload)
		if err != nil {
			return
		}
		for _, wd := range wds {
			if wd.Sign != 1 && wd.Sign != -1 {
				t.Fatalf("decoded invalid sign %d", wd.Sign)
			}
			p, err := encodeDelta(wd.Pred, wd.Vals, wd.Sign)
			if err != nil {
				t.Fatalf("re-encoding decoded delta: %v", err)
			}
			back, err := decodeDelta(p)
			if err != nil {
				t.Fatalf("re-decoding: %v", err)
			}
			if back.Pred != wd.Pred || back.Sign != wd.Sign || len(back.Vals) != len(wd.Vals) {
				t.Fatalf("round trip diverged: %+v vs %+v", back, wd)
			}
		}
	})
}
