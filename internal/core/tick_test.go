package core

import (
	"testing"

	"repro/internal/colog"
)

func asg(pred string, vals ...colog.Value) Assignment {
	return Assignment{Pred: pred, Vals: vals}
}

func deltaStr(d DecisionDelta) string {
	sign := "+"
	if d.Sign < 0 {
		sign = "-"
	}
	return sign + d.Tuple.String()
}

func TestDiffDecisions(t *testing.T) {
	a1 := asg("assign", colog.IntVal(1), colog.IntVal(10))
	a2 := asg("assign", colog.IntVal(2), colog.IntVal(20))
	a2b := asg("assign", colog.IntVal(2), colog.IntVal(21))
	b1 := asg("route", colog.StringVal("x"), colog.IntVal(0))

	cases := []struct {
		name       string
		prev, next []Assignment
		want       []string
	}{
		{"empty", nil, nil, nil},
		{"all inserts", nil, []Assignment{a1, a2}, []string{
			"+" + (Tuple{a1.Pred, a1.Vals}).String(),
			"+" + (Tuple{a2.Pred, a2.Vals}).String(),
		}},
		{"all retracts", []Assignment{a1, a2}, nil, []string{
			"-" + (Tuple{a1.Pred, a1.Vals}).String(),
			"-" + (Tuple{a2.Pred, a2.Vals}).String(),
		}},
		{"unchanged", []Assignment{a1, a2, b1}, []Assignment{b1, a2, a1}, nil},
		{"one moved", []Assignment{a1, a2}, []Assignment{a1, a2b}, []string{
			"-" + (Tuple{a2.Pred, a2.Vals}).String(),
			"+" + (Tuple{a2b.Pred, a2b.Vals}).String(),
		}},
		{"multiset", []Assignment{a1, a1, a2}, []Assignment{a1, a2, a2}, []string{
			"-" + (Tuple{a1.Pred, a1.Vals}).String(),
			"+" + (Tuple{a2.Pred, a2.Vals}).String(),
		}},
	}
	for _, tc := range cases {
		got := DiffDecisions(tc.prev, tc.next)
		var gotStr []string
		for _, d := range got {
			gotStr = append(gotStr, deltaStr(d))
		}
		if len(gotStr) != len(tc.want) {
			t.Fatalf("%s: got %v want %v", tc.name, gotStr, tc.want)
		}
		for i := range gotStr {
			if gotStr[i] != tc.want[i] {
				t.Fatalf("%s: got %v want %v", tc.name, gotStr, tc.want)
			}
		}
	}
}

// TestDiffDecisionsRoundTrip checks that applying the deltas to the
// previous snapshot reproduces the next snapshot as a multiset.
func TestDiffDecisionsRoundTrip(t *testing.T) {
	prev := []Assignment{
		asg("assign", colog.IntVal(1), colog.IntVal(10)),
		asg("assign", colog.IntVal(2), colog.IntVal(20)),
		asg("assign", colog.IntVal(3), colog.IntVal(30)),
	}
	next := []Assignment{
		asg("assign", colog.IntVal(1), colog.IntVal(11)),
		asg("assign", colog.IntVal(2), colog.IntVal(20)),
		asg("assign", colog.IntVal(4), colog.IntVal(40)),
	}
	counts := map[string]int{}
	for _, a := range prev {
		counts[a.Pred+"\x00"+valsKey(a.Vals)]++
	}
	for _, d := range DiffDecisions(prev, next) {
		counts[d.Tuple.Pred+"\x00"+valsKey(d.Tuple.Vals)] += d.Sign
	}
	for _, a := range next {
		k := a.Pred + "\x00" + valsKey(a.Vals)
		counts[k]--
		if counts[k] < 0 {
			t.Fatalf("delta application under-produced %v", a)
		}
	}
	for k, c := range counts {
		if c != 0 {
			t.Fatalf("delta application left residue %q=%d", k, c)
		}
	}
}

func TestWireValueHelpersRoundTrip(t *testing.T) {
	vals := []colog.Value{
		colog.IntVal(-42),
		colog.FloatVal(3.5),
		colog.StringVal("dc1"),
		colog.BoolVal(true),
	}
	buf := AppendWireString(nil, "vmRaw")
	buf, err := AppendWireValues(buf, vals)
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	pred, rest, ok := ReadWireString(buf)
	if !ok || pred != "vmRaw" {
		t.Fatalf("string round trip: %q ok=%v", pred, ok)
	}
	got, rest, err := ReadWireValues(rest)
	if err != nil || len(rest) != 0 {
		t.Fatalf("values round trip: %v rest=%d", err, len(rest))
	}
	if valsKey(got) != valsKey(vals) {
		t.Fatalf("values mismatch: %v vs %v", got, vals)
	}
}
