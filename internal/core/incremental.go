package core

// Incremental re-grounding with solver-model patching.
//
// Cologne's tick loops re-solve their COP as tuples churn, but grounding
// from scratch every tick throws away the fact that most of the constraint
// model is unchanged: the decision variables are stable, most rule
// instantiations join exactly the same rows, and much of what does change is
// a value update — a CPU reading, a demand allocation — that lands in the
// model as a single constant node.
//
// When Config.SolverIncremental is set, the node keeps the grounded model
// between solves together with a per-rule grounding cache, and tracks the
// net row changes per predicate (noteGroundDelta, fed by the same visible
// transitions that drive the regular-rule delta pipeline). The next solve
// classifies every solver rule:
//
//   - reuse: no predicate the rule reads changed — its cached symbolic
//     tuples and constraints are kept verbatim;
//   - patch: every change in the rule's inputs is a keyed value update of
//     cells the rule grounded into constant nodes (tracked by cell
//     provenance during grounding, with structural uses tainted) — the
//     constants are rewritten in place via solver.Model.PatchConst and the
//     cached linear-propagator shapes are refreshed, touching nothing else;
//   - re-ground: anything structural — rows appearing or vanishing, key
//     changes, tainted cells, or upstream symbolic tuples replaced — re-runs
//     just that rule's grounding plan against the current database.
//
// The constraint list is then reassembled in canonical rule order, so the
// patched model is element-for-element what a fresh grounding would have
// produced (tables enumerate rows in arrival order precisely so value
// updates do not reorder emission). Solutions and objectives are therefore
// identical to fresh grounding, tick for tick; only the work per re-solve
// shrinks. Structural changes to the variable set (var-decl forall or
// domain tables) and periodic compaction of dead expression nodes fall back
// to a full ground.

import (
	"os"
	"time"

	"repro/internal/analysis"
	"repro/internal/colog"
	"repro/internal/solver"
)

var debugInc = os.Getenv("COLOGNE_DEBUG_INC") != ""

// ---------------------------------------------------------- provenance

// cellProv identifies one ground table cell: the predicate, the full-row
// key at lift time, and the column.
type cellProv struct {
	pred string
	key  string
	col  int
}

// constRef records one constant node grounded directly from a table cell.
type constRef struct {
	e   *solver.Expr
	col int
}

// runRecorder captures, for one rule grounding, which constants came from
// which cells (refs) and which columns the rule used structurally (taints):
// join keys, compared values, folded arithmetic, filter decisions, grouping
// keys, and cells emitted into head tuples. A cell change is patchable for
// the rule only if its column is untainted.
type runRecorder struct {
	refs   map[string]map[string][]constRef // pred -> row key -> constants
	taints map[string]map[int]bool          // pred -> structural columns
}

func newRunRecorder() *runRecorder {
	return &runRecorder{
		refs:   map[string]map[string][]constRef{},
		taints: map[string]map[int]bool{},
	}
}

// taint marks the cell's column structural for this rule.
func (r *runRecorder) taint(p *cellProv) {
	if r == nil {
		return
	}
	r.taintCol(p.pred, p.col)
}

func (r *runRecorder) taintCol(pred string, col int) {
	cols := r.taints[pred]
	if cols == nil {
		cols = map[int]bool{}
		r.taints[pred] = cols
	}
	cols[col] = true
}

func (r *runRecorder) tainted(pred string, col int) bool {
	return r.taints[pred][col]
}

// ref registers a constant node grounded from the cell.
func (r *runRecorder) ref(e *solver.Expr, p *cellProv) {
	if r == nil {
		return
	}
	rows := r.refs[p.pred]
	if rows == nil {
		rows = map[string][]constRef{}
		r.refs[p.pred] = rows
	}
	rows[p.key] = append(rows[p.key], constRef{e: e, col: p.col})
}

// addPlanTaints marks the statically known structural columns of a
// grounding plan: every join argument that is compared (constants and
// repeated or previously bound variables) rather than freshly bound. Index
// probes skip rows without evaluating their cells, so these columns must be
// tainted up front — a runtime recording would miss the rows a probe never
// visited.
func (r *runRecorder) addPlanTaints(p *groundPlan) {
	for si := range p.steps {
		step := &p.steps[si]
		if step.kind != gJoin {
			continue
		}
		for col := range step.ops {
			switch step.ops[col].kind {
			case argCheck, argConst, argExpr:
				r.taintCol(step.atom.Pred, col)
			}
		}
	}
}

// ---------------------------------------------------------- cache state

// cachedRun is the cached grounding of one solver rule.
type cachedRun struct {
	out   []symTuple
	reqs  []*solver.Expr
	rec   *runRecorder
	reads []string // body predicates, deduplicated
}

// netDelta is the net visible change of one row since the last solve.
type netDelta struct {
	vals []colog.Value
	n    int // +1 net insert, -1 net delete (0 entries are removed)
}

// groundState is the grounding cache kept on the node between solves.
type groundState struct {
	model     *solver.Model
	insts     []varInstance
	varSym    map[string][]symTuple // symbolic tuples from var declarations
	varPreds  map[string]bool       // predicates read by var declarations
	headPreds map[string]bool       // solver derivation heads
	levels    [][]int               // cached dependency levels
	consIdx   []int                 // constraint-rule indices in program order
	runs      map[int]*cachedRun
	genv      map[string]colog.Value
	// nodesAtFull is the expression count right after the last full ground;
	// when re-grounds accumulate enough dead nodes past it, the next solve
	// compacts with a full ground.
	nodesAtFull int
}

// noteCacheRun stores a rule's grounding in the cache under construction.
func (g *grounder) noteCacheRun(ri int, rule *colog.Rule, run *groundRun) {
	if !g.recording {
		return
	}
	if g.cacheRuns == nil {
		g.cacheRuns = map[int]*cachedRun{}
	}
	g.cacheRuns[ri] = &cachedRun{out: run.out, reqs: run.reqs, rec: run.rec, reads: ruleReads(rule)}
}

// inferShipKeys derives primary keys for the localization ship temps
// (analysis rewrites a multi-site rule body into tmp_* tables; see
// analysis/localize.go). The temp inherits a key by propagation: a head
// position is a value column when its variable is only ever bound from
// non-key columns of the body tables; the remaining positions form the key,
// valid when every body atom contributing a value variable has all of its
// own key columns represented among the head's key variables. Keying the
// temps makes remote value churn (a neighbour's curVm reading) a keyed
// replace, which the incremental grounder can absorb by patching constants
// — and which spares downstream rules a transient double-row state either
// way.
func inferShipKeys(res *analysis.Result, declared map[string][]int, rules []*colog.Rule) map[string][]int {
	keys := make(map[string][]int, len(declared))
	for k, v := range declared {
		keys[k] = v
	}
	keyColsOf := func(a *colog.Atom) map[int]bool {
		kc, ok := keys[a.Pred]
		if !ok {
			// Whole-row set semantics: every column is part of the key.
			all := map[int]bool{}
			for i := range a.Args {
				all[i] = true
			}
			return all
		}
		cols := map[int]bool{}
		for _, c := range kc {
			cols[c] = true
		}
		return cols
	}
	for _, r := range rules {
		pred := r.Head.Pred
		if _, has := keys[pred]; has {
			continue
		}
		if _, rewritten := res.Rewritten[r.Label]; !rewritten || len(pred) < 4 || pred[:4] != "tmp_" {
			continue
		}
		// Classify head variables: value iff every body occurrence is at a
		// non-key column.
		valueVar := map[string]bool{}
		occursAtKey := map[string]bool{}
		occursAtValue := map[string]bool{}
		for _, l := range r.Body {
			al, ok := l.(*colog.AtomLit)
			if !ok {
				continue
			}
			kc := keyColsOf(al.Atom)
			for i, arg := range al.Atom.Args {
				v, isVar := arg.(*colog.VarTerm)
				if !isVar {
					continue
				}
				if kc[i] {
					occursAtKey[v.Name] = true
				} else {
					occursAtValue[v.Name] = true
				}
			}
		}
		for v := range occursAtValue {
			if !occursAtKey[v] {
				valueVar[v] = true
			}
		}
		if len(valueVar) == 0 {
			continue // nothing to gain: whole row already behaves as the key
		}
		var keyPos []int
		keyVars := map[string]bool{}
		ok := true
		for i, arg := range r.Head.Args {
			v, isVar := arg.(*colog.VarTerm)
			if !isVar {
				ok = false
				break
			}
			if !valueVar[v.Name] {
				keyPos = append(keyPos, i)
				keyVars[v.Name] = true
			}
		}
		if !ok || len(keyPos) == len(r.Head.Args) {
			continue
		}
		// Validity: each body atom binding a value variable must have all
		// of its key columns' variables among the head key variables, so
		// the key functionally determines the values.
		for _, l := range r.Body {
			al, isAtom := l.(*colog.AtomLit)
			if !isAtom {
				continue
			}
			kc := keyColsOf(al.Atom)
			contributes := false
			for i, arg := range al.Atom.Args {
				if v, isVar := arg.(*colog.VarTerm); isVar && !kc[i] && valueVar[v.Name] {
					contributes = true
					break
				}
			}
			if !contributes {
				continue
			}
			for i := range al.Atom.Args {
				if !kc[i] {
					continue
				}
				v, isVar := al.Atom.Args[i].(*colog.VarTerm)
				if !isVar || !keyVars[v.Name] {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			keys[pred] = keyPos
		}
	}
	return keys
}

// ruleReads lists the distinct body predicates of a rule.
func ruleReads(r *colog.Rule) []string {
	var out []string
	seen := map[string]bool{}
	for _, l := range r.Body {
		if al, ok := l.(*colog.AtomLit); ok && !seen[al.Atom.Pred] {
			seen[al.Atom.Pred] = true
			out = append(out, al.Atom.Pred)
		}
	}
	return out
}

// noteGroundDelta folds one visible row transition into the per-predicate
// net change log consumed by the next incremental solve. Compensating
// transitions (a row deleted and re-inserted, an aggregate passing through
// intermediate values) cancel out, so a tick that ends where it started
// leaves the predicate clean.
func (n *Node) noteGroundDelta(tr delta) {
	t := n.tables[tr.tuple.Pred]
	if t == nil || t.event {
		return
	}
	if n.groundDeltas == nil {
		n.groundDeltas = map[string]map[string]*netDelta{}
	}
	rows := n.groundDeltas[tr.tuple.Pred]
	if rows == nil {
		rows = map[string]*netDelta{}
		n.groundDeltas[tr.tuple.Pred] = rows
	}
	// The scratch buffer keeps the cancel path (retract + re-insert of the
	// same row, the common shape of a tick) allocation-free up to the map
	// entry itself. Transition row slices are immutable once emitted, so the
	// log aliases them instead of copying.
	n.deltaKeyBuf = appendValsKey(n.deltaKeyBuf[:0], tr.tuple.Vals)
	nd := rows[string(n.deltaKeyBuf)]
	if nd == nil {
		rows[string(n.deltaKeyBuf)] = &netDelta{vals: tr.tuple.Vals, n: tr.sign}
		return
	}
	nd.n += tr.sign
	if nd.n == 0 {
		delete(rows, string(n.deltaKeyBuf))
	}
}

// ---------------------------------------------------------- solve driver

// solveIncrementalLocked is solveLocked's incremental-grounding twin: it
// reuses, patches, or re-grounds against the cached model, then runs the
// shared solve/materialize phase.
func (n *Node) solveIncrementalLocked(opts SolveOptions) (*SolveResult, error) {
	groundStart := time.Now()
	stream, err := streamingGround(n.cfg.GroundMode)
	if err != nil {
		return nil, err
	}
	g := &grounder{n: n, recording: true, stream: stream}
	res := &SolveResult{}

	info, err := n.groundForSolve(g)
	if err != nil {
		n.ground = nil
		n.groundDeltas = nil
		return nil, err
	}
	res.Ground = info
	if g.model.NumVars() == 0 {
		// Nothing to optimize; nothing worth caching either.
		n.ground = nil
		n.groundDeltas = nil
		res.Status = solver.StatusOptimal
		n.LastSolveResult = res
		return res, nil
	}
	res.GroundWall = time.Since(groundStart)
	out, err := n.finishSolve(g, opts, res)
	if err != nil {
		n.ground = nil
		n.groundDeltas = nil
	}
	return out, err
}

// groundForSolve grounds incrementally against the cache when possible,
// fully otherwise, leaving the grounder ready for finishSolve.
func (n *Node) groundForSolve(g *grounder) (*GroundInfo, error) {
	if st := n.ground; st != nil {
		if info, ok, err := n.groundIncremental(g, st); err != nil {
			return nil, err
		} else if ok {
			return info, nil
		}
	}
	return n.groundFull(g)
}

// groundFull grounds from scratch — first solve, structural variable
// change, or compaction — and rebuilds the cache.
func (n *Node) groundFull(g *grounder) (*GroundInfo, error) {
	info := &GroundInfo{Mode: "full"}
	g.model = solver.NewModel()
	g.sym = map[string][]symTuple{}
	g.cacheRuns = map[int]*cachedRun{}
	if err := g.createVars(); err != nil {
		return nil, err
	}
	if g.model.NumVars() == 0 {
		return info, nil
	}
	// Snapshot the var-declaration symbolic tuples before derivation rules
	// append to the same map (full slice expressions force appends to copy).
	varSym := make(map[string][]symTuple, len(g.sym))
	for pred, sts := range g.sym {
		varSym[pred] = sts[:len(sts):len(sts)]
	}
	if err := g.deriveSolverRules(); err != nil {
		return nil, err
	}
	if err := g.applyConstraintRules(); err != nil {
		return nil, err
	}
	if err := g.setGoal(); err != nil {
		return nil, err
	}

	res := n.res
	st := &groundState{
		model:       g.model,
		insts:       g.insts,
		varSym:      varSym,
		varPreds:    map[string]bool{},
		headPreds:   map[string]bool{},
		levels:      solverRuleLevels(res.Program.Rules, res.SolverOrder),
		runs:        g.cacheRuns,
		genv:        g.genv,
		nodesAtFull: g.model.NumExprNodes(),
	}
	for _, vd := range res.Program.Vars {
		st.varPreds[vd.ForAll.Pred] = true
		if vd.Domain != nil && vd.Domain.FromTable != "" {
			st.varPreds[vd.Domain.FromTable] = true
		}
	}
	for ri, class := range res.Classes {
		switch class {
		case analysis.SolverDerivationRule:
			st.headPreds[res.Program.Rules[ri].Head.Pred] = true
		case analysis.SolverConstraintRule:
			st.consIdx = append(st.consIdx, ri)
		}
	}
	n.ground = st
	n.groundDeltas = nil
	return info, nil
}

// groundIncremental re-grounds against the cache. ok is false when the
// change set demands a full ground (variable-set change or compaction).
func (n *Node) groundIncremental(g *grounder, st *groundState) (*GroundInfo, bool, error) {
	// Compaction: re-grounds leave dead expression nodes behind in the
	// model; once they outnumber the live model, rebuild from scratch.
	if st.model.NumExprNodes() > 2*st.nodesAtFull+4096 {
		return nil, false, nil
	}
	// Effective per-predicate changes (materialized rows shadowed by the
	// variable tuples are invisible to grounding and therefore ignorable).
	dirty := map[string][]*netDelta{}
	for pred, rows := range n.groundDeltas {
		if eff := n.effectiveDeltas(st, pred, rows); len(eff) > 0 {
			dirty[pred] = eff
		}
	}
	// A change under a var declaration changes the variable set: full.
	for pred := range dirty {
		if st.varPreds[pred] {
			return nil, false, nil
		}
	}

	info := &GroundInfo{Mode: "incremental"}
	g.model = st.model
	g.insts = st.insts
	g.genv = st.genv
	g.sym = make(map[string][]symTuple, len(st.varSym))
	for pred, sts := range st.varSym {
		g.sym[pred] = sts[:len(sts):len(sts)]
	}

	rules := n.res.Program.Rules
	symChanged := map[string]bool{}
	goalDirty := false

	process := func(ri int, constraint bool) error {
		rule := rules[ri]
		run := st.runs[ri]
		upstream := constraint && symChanged[rule.Head.Pred]
		var dirtyReads []string
		for _, p := range run.reads {
			if symChanged[p] {
				upstream = true
			}
			if dirty[p] != nil {
				dirtyReads = append(dirtyReads, p)
			}
		}
		switch {
		case !upstream && len(dirtyReads) == 0:
			info.RulesReused++
		case !upstream && n.patchRun(st, run, dirtyReads, dirty, info):
			info.RulesPatched++
			if debugInc {
				println("PATCH", ruleName(rule))
			}
		default:
			if debugInc {
				println("REGROUND", ruleName(rule), "upstream", upstream, "dirty", len(dirtyReads))
				for _, p := range dirtyReads {
					println("   dirty read:", p)
				}
			}
			var fresh *groundRun
			var err error
			if constraint {
				var job *constraintJob
				if job, err = g.buildConstraintJob(ri, rule); err == nil {
					fresh, err = g.runConstraintJob(job)
				}
			} else {
				var plan *groundPlan
				if plan, err = g.planGroundBody(rule, nil); err == nil {
					fresh, err = g.groundRuleRun(rule, plan)
				}
			}
			if err != nil {
				return err
			}
			st.runs[ri] = &cachedRun{out: fresh.out, reqs: fresh.reqs, rec: fresh.rec, reads: run.reads}
			run = st.runs[ri]
			if !constraint {
				symChanged[rule.Head.Pred] = true
			}
			info.RulesReground++
		}
		if !constraint && len(run.out) > 0 {
			head := rule.Head.Pred
			g.sym[head] = append(g.sym[head], run.out...)
			g.invalidatePred(head)
		}
		return nil
	}

	for _, level := range st.levels {
		for _, ri := range level {
			if err := process(ri, false); err != nil {
				return nil, false, err
			}
		}
	}
	for _, ri := range st.consIdx {
		if err := process(ri, true); err != nil {
			return nil, false, err
		}
	}

	// Objective: recompute when the goal predicate's rows or symbolic
	// tuples changed (cheap — it reuses the cached aggregate expressions).
	if goal := n.res.Program.Goal; goal != nil && goal.Sense != colog.GoalSatisfy {
		goalDirty = dirty[goal.Atom.Pred] != nil || symChanged[goal.Atom.Pred]
		if goalDirty {
			g.genv = nil
			if err := g.installGoal(); err != nil {
				return nil, false, err
			}
			st.genv = g.genv
		}
	}

	// Reassemble the constraint list in canonical rule order — exactly the
	// order a fresh grounding posts in. For a pure reuse/patch tick the
	// list is element-wise identical and the cached search metadata
	// survives.
	var cs []*solver.Expr
	for _, level := range st.levels {
		for _, ri := range level {
			cs = append(cs, st.runs[ri].reqs...)
		}
	}
	for _, ri := range st.consIdx {
		cs = append(cs, st.runs[ri].reqs...)
	}
	st.model.SetConstraints(cs)

	n.groundDeltas = nil
	return info, true, nil
}

// effectiveDeltas filters a predicate's net changes down to those visible
// to the grounder: for a var-declaration predicate, materialized rows whose
// regular-attribute key is shadowed by a symbolic tuple never reach a rule
// body (rowsFor merges only unshadowed rows), so changes to them are noise.
func (n *Node) effectiveDeltas(st *groundState, pred string, rows map[string]*netDelta) []*netDelta {
	out := make([]*netDelta, 0, len(rows))
	sym := st.varSym[pred]
	if len(sym) == 0 || st.headPreds[pred] {
		// Not a pure var-declaration predicate: everything counts.
		for _, nd := range rows {
			out = append(out, nd)
		}
		return out
	}
	ti := n.res.Tables[pred]
	shadow := map[string]bool{}
	for _, stpl := range sym {
		k, ok := symRegKey(ti, func(i int) (colog.Value, bool) {
			if stpl[i].isSym() {
				return colog.Value{}, false
			}
			return stpl[i].val, true
		})
		if ok {
			shadow[k] = true
		}
	}
	for _, nd := range rows {
		k, _ := symRegKey(ti, func(i int) (colog.Value, bool) { return nd.vals[i], true })
		if !shadow[k] {
			out = append(out, nd)
		}
	}
	return out
}

// symRegKey builds the regular-attribute (non-solver-column) key used for
// shadow tests, mirroring rowsFor's merge logic.
func symRegKey(ti *analysis.TableInfo, get func(i int) (colog.Value, bool)) (string, bool) {
	k := ""
	for i := 0; i < ti.Arity; i++ {
		if ti.SolverAttrs[i] {
			continue
		}
		v, ok := get(i)
		if !ok {
			return "", false
		}
		k += v.Key() + "|"
	}
	return k, true
}

// ---------------------------------------------------------- patching

// colPatch is one constant rewrite: the cell's column and its new value.
type colPatch struct {
	col int
	val float64
}

// rowPatch is one keyed value update applied to a rule's cached grounding.
type rowPatch struct {
	pred           string
	oldKey, newKey string
	cols           []colPatch
}

// patchRun decides whether every change in the rule's dirty input
// predicates is a keyed value update the cached grounding can absorb, and
// if so applies it: the constants grounded from the changed cells are
// rewritten in place and the provenance index is re-keyed. Returns false —
// leaving the cache untouched — when anything structural is involved.
func (n *Node) patchRun(st *groundState, run *cachedRun, dirtyReads []string, dirty map[string][]*netDelta, info *GroundInfo) bool {
	var patches []rowPatch
	for _, pred := range dirtyReads {
		t := n.tables[pred]
		if t == nil || t.keyCols == nil {
			// Without a primary key a value change is a fresh row, which
			// lands at a new position in the stable row order: structural.
			return false
		}
		type pair struct {
			del, ins *netDelta
			bad      bool
		}
		groups := map[string]*pair{}
		for _, nd := range dirty[pred] {
			k := string(keyOf(nd.vals, t.keyCols))
			p := groups[k]
			if p == nil {
				p = &pair{}
				groups[k] = p
			}
			switch {
			case nd.n == 1 && p.ins == nil:
				p.ins = nd
			case nd.n == -1 && p.del == nil:
				p.del = nd
			default:
				p.bad = true
			}
		}
		for _, p := range groups {
			if p.bad || p.del == nil || p.ins == nil {
				return false // row appeared, vanished, or churned: structural
			}
			oldKey := valsKey(p.del.vals)
			var cols []colPatch
			refs := run.rec.refs[pred][oldKey]
			for c := range p.del.vals {
				if p.del.vals[c].Equal(p.ins.vals[c]) {
					continue
				}
				if run.rec.tainted(pred, c) {
					return false // structural use of the changed column
				}
				hasRef := false
				for _, ref := range refs {
					if ref.col == c {
						hasRef = true
						break
					}
				}
				if !hasRef {
					continue // the rule never grounded this cell: no-op
				}
				if !p.ins.vals[c].IsNumeric() {
					return false
				}
				cols = append(cols, colPatch{col: c, val: p.ins.vals[c].Num()})
			}
			patches = append(patches, rowPatch{
				pred: pred, oldKey: oldKey, newKey: valsKey(p.ins.vals), cols: cols,
			})
		}
	}
	// All changes absorbed: apply.
	for _, rp := range patches {
		rows := run.rec.refs[rp.pred]
		refs := rows[rp.oldKey]
		for _, cp := range rp.cols {
			for _, ref := range refs {
				if ref.col == cp.col {
					st.model.PatchConst(ref.e, cp.val)
					info.ConstsPatched++
				}
			}
		}
		if rp.oldKey != rp.newKey && refs != nil {
			delete(rows, rp.oldKey)
			rows[rp.newKey] = refs
		}
	}
	return true
}

// ---------------------------------------------------------- warm start

// warmStartHints derives solver hints from the previous solve's
// materialized assignments (cfg.SolverWarmStart): each variable whose tuple
// was assigned last tick is branched on that value first.
func (n *Node) warmStartHints(g *grounder) map[int]int64 {
	var hints map[int]int64
	byPred := map[string]map[string]int64{}
	for _, inst := range g.insts {
		if inst.v == nil {
			continue
		}
		ti := n.res.Tables[inst.pred]
		if ti == nil {
			continue
		}
		// Hint only single-attribute tuples: with several unbound positions
		// the instance records just one variable, and pairing it with the
		// first solver-attribute cell would hint the wrong variable.
		nSym := 0
		for _, isSym := range ti.SolverAttrs {
			if isSym {
				nSym++
			}
		}
		if nSym != 1 {
			continue
		}
		idx, ok := byPred[inst.pred]
		if !ok {
			idx = map[string]int64{}
			for _, tp := range n.lastMaterialized[inst.pred] {
				k, kok := symRegKey(ti, func(i int) (colog.Value, bool) { return tp.Vals[i], true })
				if !kok {
					continue
				}
				for i, v := range tp.Vals {
					if ti.SolverAttrs[i] && v.Kind == colog.KindInt {
						idx[k] = v.I
						break
					}
				}
			}
			byPred[inst.pred] = idx
		}
		k, kok := symRegKey(ti, func(i int) (colog.Value, bool) {
			if inst.vals[i].isSym() {
				return colog.Value{}, false
			}
			return inst.vals[i].val, true
		})
		if !kok {
			continue
		}
		if v, have := idx[k]; have {
			if hints == nil {
				hints = map[int]int64{}
			}
			hints[inst.v.ID] = v
		}
	}
	return hints
}
