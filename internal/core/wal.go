package core

// Write-ahead delta log records and replay. The log (internal/store.WAL)
// is a logical redo log of the node's externally visible transitions —
// external updates, network deliveries, solver materializations, resync
// outcomes, checkpoints — not of physical row writes. Replay re-executes
// the records through the same evaluation pipeline as live operation, so a
// replayed node re-derives everything a live node derived, rebuilds both
// replica mirrors, and ends in the same state, without retransmitting a
// single tuple.
//
// Record payloads reuse the varint wire primitives of the delta codec
// (tuple.go); framing/CRC/versioning live in internal/store.
//
// Record grammar (first payload byte is the type):
//
//	update:     [1][origin][pred][varint sign][vals]
//	solve:      [2][uvarint nTables]([pred][uvarint nTuples]([vals])*)*
//	            [hasGoal byte]([pred][vals])?
//	invokeDone: [3]
//	resync:     [4][peer][uvarint nTables]([name][uvarint nEntries]
//	            ([uvarint count][vals])*)*[uvarint nOps]
//	            ([pred][varint sign][uvarint times][vals])*
//	checkpoint: [5][checkpoint bytes (checkpoint.go)]
//
// Solve records are bracketed: an invokeSolver event always appends an
// invokeDone marker when the invoke finishes, preceded by a solve record
// iff the solve materialized (infeasible or failed solves materialize
// nothing). Brackets are contiguous — the node lock is held across the
// drain that fires the invoke — so replay can consume a bracket with a
// simple cursor (replayInvoke) instead of re-running the solver.

import (
	"encoding/binary"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/colog"
	"repro/internal/transport"
)

const (
	walRecUpdate     = 1
	walRecSolve      = 2
	walRecInvokeDone = 3
	walRecResync     = 4
	walRecCheckpoint = 5
)

// resyncOp is one step of a resync update plan (see handleResyncRows).
type resyncOp struct {
	pred  string
	vals  []colog.Value
	sign  int
	times int
}

// resyncMirror is one table's rebuilt receive-side mirror, logged together
// with the plan so a replayed node's mirror and tables cannot disagree.
type resyncMirror struct {
	name    string
	entries []mirrorEntry
}

// walAppend writes one record to the delta log. No-op without a log or
// during replay. Append failures surface on LastError: the node keeps
// serving, but its durability guarantee is gone from that point on.
func (n *Node) walAppend(payload []byte) {
	if err := n.wal.Append(payload); err != nil {
		n.LastError = fmt.Errorf("core: delta log append at %s: %w", n.Addr, err)
	}
}

func (n *Node) walUpdate(pred string, vals []colog.Value, sign int, origin string) {
	if n.wal == nil || n.replaying {
		return
	}
	buf := make([]byte, 0, 16+len(origin)+len(pred)+12*len(vals))
	buf = append(buf, walRecUpdate)
	buf = appendWireString(buf, origin)
	buf = appendWireString(buf, pred)
	buf = binary.AppendVarint(buf, int64(sign))
	buf, err := appendWireVals(buf, vals)
	if err != nil {
		n.LastError = fmt.Errorf("core: logging %s update at %s: %w", pred, n.Addr, err)
		return
	}
	n.walAppend(buf)
}

func (n *Node) walSolve(mats []matTable, goal *Tuple) {
	if n.wal == nil || n.replaying {
		return
	}
	buf := []byte{walRecSolve}
	buf = binary.AppendUvarint(buf, uint64(len(mats)))
	var err error
	for _, mt := range mats {
		buf = appendWireString(buf, mt.pred)
		buf = binary.AppendUvarint(buf, uint64(len(mt.tuples)))
		for _, t := range mt.tuples {
			if buf, err = appendWireVals(buf, t.Vals); err != nil {
				n.LastError = fmt.Errorf("core: logging solve at %s: %w", n.Addr, err)
				return
			}
		}
	}
	if goal != nil {
		buf = append(buf, 1)
		buf = appendWireString(buf, goal.Pred)
		if buf, err = appendWireVals(buf, goal.Vals); err != nil {
			n.LastError = fmt.Errorf("core: logging solve goal at %s: %w", n.Addr, err)
			return
		}
	} else {
		buf = append(buf, 0)
	}
	n.walAppend(buf)
}

func (n *Node) walInvokeDone() {
	if n.wal == nil || n.replaying {
		return
	}
	n.walAppend([]byte{walRecInvokeDone})
}

func (n *Node) walResync(peer string, tables []resyncMirror, plan []resyncOp) {
	if n.wal == nil || n.replaying {
		return
	}
	buf := []byte{walRecResync}
	buf = appendWireString(buf, peer)
	buf = binary.AppendUvarint(buf, uint64(len(tables)))
	var err error
	for _, tb := range tables {
		buf = appendWireString(buf, tb.name)
		live := 0
		for _, e := range tb.entries {
			if e.count > 0 {
				live++
			}
		}
		buf = binary.AppendUvarint(buf, uint64(live))
		for _, e := range tb.entries {
			if e.count <= 0 {
				continue
			}
			buf = binary.AppendUvarint(buf, uint64(e.count))
			if buf, err = appendWireVals(buf, e.vals); err != nil {
				n.LastError = fmt.Errorf("core: logging resync at %s: %w", n.Addr, err)
				return
			}
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(plan)))
	for _, o := range plan {
		buf = appendWireString(buf, o.pred)
		buf = binary.AppendVarint(buf, int64(o.sign))
		buf = binary.AppendUvarint(buf, uint64(o.times))
		if buf, err = appendWireVals(buf, o.vals); err != nil {
			n.LastError = fmt.Errorf("core: logging resync at %s: %w", n.Addr, err)
			return
		}
	}
	n.walAppend(buf)
}

// ------------------------------------------------------------ decoding

func decodeWALUpdate(rec []byte) (origin, pred string, sign int, vals []colog.Value, err error) {
	rest := rec[1:]
	var ok bool
	if origin, rest, ok = readWireString(rest); !ok {
		return "", "", 0, nil, fmt.Errorf("malformed update origin")
	}
	if pred, rest, ok = readWireString(rest); !ok {
		return "", "", 0, nil, fmt.Errorf("malformed update predicate")
	}
	s, w := binary.Varint(rest)
	if w <= 0 {
		return "", "", 0, nil, fmt.Errorf("malformed update sign")
	}
	rest = rest[w:]
	if vals, rest, err = readWireVals(rest); err != nil {
		return "", "", 0, nil, err
	}
	if len(rest) != 0 {
		return "", "", 0, nil, fmt.Errorf("trailing bytes in update record")
	}
	return origin, pred, int(s), vals, nil
}

func decodeWALSolve(rec []byte) ([]matTable, *Tuple, error) {
	rest := rec[1:]
	nTables, w := binary.Uvarint(rest)
	if w <= 0 {
		return nil, nil, fmt.Errorf("malformed solve table count")
	}
	rest = rest[w:]
	mats := make([]matTable, 0, nTables)
	for i := uint64(0); i < nTables; i++ {
		pred, r, ok := readWireString(rest)
		if !ok {
			return nil, nil, fmt.Errorf("malformed solve predicate")
		}
		rest = r
		nTuples, w := binary.Uvarint(rest)
		if w <= 0 {
			return nil, nil, fmt.Errorf("malformed solve tuple count")
		}
		rest = rest[w:]
		tuples := make([]Tuple, 0, nTuples)
		for j := uint64(0); j < nTuples; j++ {
			vals, r, err := readWireVals(rest)
			if err != nil {
				return nil, nil, err
			}
			rest = r
			tuples = append(tuples, Tuple{pred, vals})
		}
		mats = append(mats, matTable{pred: pred, tuples: tuples})
	}
	if len(rest) == 0 {
		return nil, nil, fmt.Errorf("malformed solve goal flag")
	}
	hasGoal := rest[0] != 0
	rest = rest[1:]
	var goal *Tuple
	if hasGoal {
		pred, r, ok := readWireString(rest)
		if !ok {
			return nil, nil, fmt.Errorf("malformed solve goal predicate")
		}
		vals, r2, err := readWireVals(r)
		if err != nil {
			return nil, nil, err
		}
		rest = r2
		goal = &Tuple{pred, vals}
	}
	if len(rest) != 0 {
		return nil, nil, fmt.Errorf("trailing bytes in solve record")
	}
	return mats, goal, nil
}

func decodeWALResync(rec []byte) (peer string, tables []resyncMirror, plan []resyncOp, err error) {
	rest := rec[1:]
	var ok bool
	if peer, rest, ok = readWireString(rest); !ok {
		return "", nil, nil, fmt.Errorf("malformed resync peer")
	}
	nTables, w := binary.Uvarint(rest)
	if w <= 0 {
		return "", nil, nil, fmt.Errorf("malformed resync table count")
	}
	rest = rest[w:]
	for i := uint64(0); i < nTables; i++ {
		name, r, ok := readWireString(rest)
		if !ok {
			return "", nil, nil, fmt.Errorf("malformed resync table name")
		}
		rest = r
		nEntries, w := binary.Uvarint(rest)
		if w <= 0 {
			return "", nil, nil, fmt.Errorf("malformed resync entry count")
		}
		rest = rest[w:]
		m := resyncMirror{name: name}
		for j := uint64(0); j < nEntries; j++ {
			count, w := binary.Uvarint(rest)
			if w <= 0 {
				return "", nil, nil, fmt.Errorf("malformed resync entry count value")
			}
			rest = rest[w:]
			vals, r, err := readWireVals(rest)
			if err != nil {
				return "", nil, nil, err
			}
			rest = r
			key := valsKey(vals)
			m.entries = append(m.entries, mirrorEntry{key: key, hash: fnvHash(key), vals: vals, count: int(count)})
		}
		tables = append(tables, m)
	}
	nOps, w := binary.Uvarint(rest)
	if w <= 0 {
		return "", nil, nil, fmt.Errorf("malformed resync op count")
	}
	rest = rest[w:]
	for i := uint64(0); i < nOps; i++ {
		pred, r, ok := readWireString(rest)
		if !ok {
			return "", nil, nil, fmt.Errorf("malformed resync op predicate")
		}
		rest = r
		s, w := binary.Varint(rest)
		if w <= 0 {
			return "", nil, nil, fmt.Errorf("malformed resync op sign")
		}
		rest = rest[w:]
		times, w := binary.Uvarint(rest)
		if w <= 0 {
			return "", nil, nil, fmt.Errorf("malformed resync op times")
		}
		rest = rest[w:]
		vals, r2, err := readWireVals(rest)
		if err != nil {
			return "", nil, nil, err
		}
		rest = r2
		plan = append(plan, resyncOp{pred: pred, vals: vals, sign: int(s), times: int(times)})
	}
	if len(rest) != 0 {
		return "", nil, nil, fmt.Errorf("trailing bytes in resync record")
	}
	return peer, tables, plan, nil
}

// ------------------------------------------------------------ replay

// ReplayNode rebuilds a node from its write-ahead delta log: the instance
// is constructed empty (program facts are in the log — they were inserted
// and logged by the original NewNode) and every surviving record is
// re-executed with logging and transmission suppressed. Requires a
// Config.Storage backend with a log. The log may be torn (crash mid-append
// or truncated tail): the store layer already dropped the partial record,
// and a bracket torn mid-invoke simply ends the replay — anti-entropy
// resync reconciles whatever the lost suffix contained.
func ReplayNode(addr string, res *analysis.Result, cfg Config, tr transport.Transport) (*Node, error) {
	if cfg.Storage == nil || cfg.Storage.Log() == nil {
		return nil, fmt.Errorf("core: replay at %s: storage backend has no log", addr)
	}
	recs, err := cfg.Storage.Log().ReadRecords()
	if err != nil {
		return nil, fmt.Errorf("core: replay at %s: %w", addr, err)
	}
	n, err := newNode(addr, res, cfg, tr)
	if err != nil {
		return nil, err
	}
	if err := n.replayLog(recs); err != nil {
		return nil, fmt.Errorf("core: replay at %s: %w", addr, err)
	}
	return n, nil
}

// replayLog re-executes the log records against a freshly constructed
// (empty-table) node. CRC-valid records that fail semantic decoding are an
// error: the store layer guarantees a torn tail never reaches this loop,
// so a malformed record here means corruption or version drift.
func (n *Node) replayLog(recs [][]byte) error {
	n.mu.Lock()
	n.replaying = true
	n.replayRecs = recs
	n.replayPos = 0
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		n.replaying = false
		n.replayRecs = nil
		n.replayPos = 0
		n.mu.Unlock()
	}()
	for {
		n.mu.Lock()
		if n.replayPos >= len(n.replayRecs) {
			n.mu.Unlock()
			return nil
		}
		rec := n.replayRecs[n.replayPos]
		n.replayPos++
		n.mu.Unlock()
		if len(rec) == 0 {
			return fmt.Errorf("empty log record")
		}
		switch rec[0] {
		case walRecCheckpoint:
			// A compaction point: the checkpoint is the net effect of every
			// record it replaced.
			if err := n.ImportCheckpoint(rec[1:]); err != nil {
				return err
			}
		case walRecUpdate:
			origin, pred, sign, vals, err := decodeWALUpdate(rec)
			if err != nil {
				return err
			}
			if err := n.updateFromLogged(pred, vals, sign, origin, false); err != nil {
				return err
			}
		case walRecSolve:
			// A top-level Solve call (event-fired solves are consumed inside
			// their bracket by replayInvoke before the cursor returns here).
			mats, goal, err := decodeWALSolve(rec)
			if err != nil {
				return err
			}
			n.mu.Lock()
			err = n.applyMaterialization(mats, goal)
			n.mu.Unlock()
			if err != nil {
				return err
			}
		case walRecResync:
			if err := n.replayResync(rec); err != nil {
				return err
			}
		case walRecInvokeDone:
			// An unconsumed invoke-done marker: its solve record was applied
			// at top level or the bracket start was compacted away. Harmless.
		default:
			return fmt.Errorf("unknown log record type %d", rec[0])
		}
	}
}

// replayInvoke consumes one invoke bracket from the record cursor in place
// of running the solver: a solve record (if the live invoke materialized)
// followed by the invoke-done marker. Called with n.mu held, from inside
// the drain that fired the invokeSolver event — mirroring exactly where
// the live node ran the solver and appended the bracket. Hitting the end
// of the records mid-bracket means the crash tore the invoke's tail away;
// the replay simply stops deriving there and resync reconciles.
func (n *Node) replayInvoke() {
	for {
		if n.replayPos >= len(n.replayRecs) {
			return // torn bracket at the log tail
		}
		rec := n.replayRecs[n.replayPos]
		if len(rec) == 0 {
			n.LastError = fmt.Errorf("core: replay at %s: empty record in invoke bracket", n.Addr)
			return
		}
		switch rec[0] {
		case walRecInvokeDone:
			n.replayPos++
			return
		case walRecSolve:
			n.replayPos++
			mats, goal, err := decodeWALSolve(rec)
			if err != nil {
				n.LastError = fmt.Errorf("core: replay at %s: %w", n.Addr, err)
				return
			}
			// The deltas queue on the node and are drained by the outer
			// loop that fired the invoke — identical to a live materialize,
			// whose drain call is likewise re-entrant here.
			if err := n.applyMaterialization(mats, goal); err != nil {
				n.LastError = err
				return
			}
		default:
			// Live brackets are contiguous under the node lock, and tearing
			// only removes a log suffix — a foreign record inside a bracket
			// means corruption.
			n.LastError = fmt.Errorf("core: replay at %s: record type %d inside invoke bracket", n.Addr, rec[0])
			return
		}
	}
}

// replayResync re-applies a logged resync outcome: install the rebuilt
// receive-side mirrors, then re-run the update plan (unlogged — the resync
// record covers it, exactly as it did live).
func (n *Node) replayResync(rec []byte) error {
	peer, tables, plan, err := decodeWALResync(rec)
	if err != nil {
		return err
	}
	n.mu.Lock()
	for _, tb := range tables {
		next := &mirrorSet{index: map[string]int{}}
		for _, e := range tb.entries {
			next.entries = append(next.entries, e)
			next.index[e.key] = len(next.entries) - 1
			next.live++
		}
		if n.repl.recv[peer] == nil {
			n.repl.recv[peer] = map[string]*mirrorSet{}
		}
		n.repl.recv[peer][tb.name] = next
	}
	n.mu.Unlock()
	for _, o := range plan {
		for i := 0; i < o.times; i++ {
			if err := n.updateFromLogged(o.pred, o.vals, o.sign, "", false); err != nil {
				return err
			}
		}
	}
	return nil
}

// SetEnsureInserts toggles idempotent-insert mode: while set, inserting a
// row that is already visible is a complete no-op — no derivation count
// bump, no log record. The cluster restart path uses it to re-inject a
// node's base facts (program facts + seed) after a log replay: with an
// intact log every fact is already present and nothing happens; with a
// torn log the facts the lost records carried are restored, because local
// base facts are the one thing anti-entropy cannot pull from peers.
func (n *Node) SetEnsureInserts(on bool) {
	n.mu.Lock()
	n.ensure = on
	n.mu.Unlock()
}

// InsertProgramFacts loads the program facts addressed to this node — the
// same loading NewNode performs. Exposed for the restart path, which
// constructs nodes via replay (no fact loading) and then re-ensures them.
func (n *Node) InsertProgramFacts() error {
	for _, f := range n.res.Program.Facts {
		vals := make([]colog.Value, len(f.Atom.Args))
		for i, a := range f.Atom.Args {
			vals[i] = a.(*colog.ConstTerm).Val
		}
		ti := n.res.Tables[f.Atom.Pred]
		if ti.LocCol >= 0 && vals[ti.LocCol].S != n.Addr {
			continue
		}
		if err := n.Insert(f.Atom.Pred, vals...); err != nil {
			return err
		}
	}
	return nil
}
