package core

import (
	"sort"

	"repro/internal/analysis"
	"repro/internal/colog"
	"repro/internal/store"
)

// Counting-based incremental view maintenance is exact for non-recursive
// rules but over-retains tuples whose derivations support each other
// through a cycle (delete an edge of a two-node loop and the reach tuples
// keep each other alive). The classic fix is DRed (delete-and-rederive);
// this engine uses an equivalent, simpler strategy sized to Cologne
// workloads: deletions that can affect a recursive predicate group mark the
// group dirty, and after the delta queue drains each dirty group is
// recomputed from its base facts by naive fixpoint evaluation, with the
// visible difference propagated downstream.
//
// Recursive groups whose rules ship tuples across nodes keep plain counting
// (a distributed recompute would need global coordination); this matches
// declarative networking practice, where recursion with distributed
// deletion is handled by soft state rather than exact maintenance.

// recursiveGroup is one strongly connected component of the predicate
// dependency graph that contains a cycle.
type recursiveGroup struct {
	preds map[string]bool
	rules []int // indices into res.Program.Rules with head in the group
	local bool  // false: distributed recursion, counting fallback
}

// buildRecursiveGroups finds cyclic SCCs among regular derivation rules.
// Rules joining an event table are excluded: their derivations are one-shot
// state updates that can never be re-derived (the event is gone), so they
// are not recursion in the view-maintenance sense — Follow-the-Sun's r3
// (curVm <- curVm, migVm-event) is the canonical example.
func (n *Node) buildRecursiveGroups(res *analysis.Result) []*recursiveGroup {
	// Dependency edges: body pred -> head pred.
	adj := map[string][]string{}
	radj := map[string][]string{}
	selfLoop := map[string]bool{}
	nodes := map[string]bool{}
	for i, r := range res.Program.Rules {
		if res.Classes[i] != analysis.RegularRule || n.ruleJoinsEvent(r) {
			continue
		}
		head := r.Head.Pred
		nodes[head] = true
		for _, l := range r.Body {
			al, ok := l.(*colog.AtomLit)
			if !ok {
				continue
			}
			b := al.Atom.Pred
			nodes[b] = true
			adj[b] = append(adj[b], head)
			radj[head] = append(radj[head], b)
			if b == head {
				selfLoop[head] = true
			}
		}
	}
	// Kosaraju SCC.
	var order []string
	seen := map[string]bool{}
	var dfs1 func(u string)
	dfs1 = func(u string) {
		seen[u] = true
		for _, v := range adj[u] {
			if !seen[v] {
				dfs1(v)
			}
		}
		order = append(order, u)
	}
	for u := range nodes {
		if !seen[u] {
			dfs1(u)
		}
	}
	comp := map[string]int{}
	var members [][]string
	var dfs2 func(u string, c int)
	dfs2 = func(u string, c int) {
		comp[u] = c
		members[c] = append(members[c], u)
		for _, v := range radj[u] {
			if _, done := comp[v]; !done {
				dfs2(v, c)
			}
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		if _, done := comp[u]; !done {
			members = append(members, nil)
			dfs2(u, len(members)-1)
		}
	}

	var groups []*recursiveGroup
	for _, ms := range members {
		if len(ms) == 1 && !selfLoop[ms[0]] {
			continue
		}
		g := &recursiveGroup{preds: map[string]bool{}, local: true}
		for _, p := range ms {
			g.preds[p] = true
		}
		for i, r := range res.Program.Rules {
			if res.Classes[i] != analysis.RegularRule || !g.preds[r.Head.Pred] || n.ruleJoinsEvent(r) {
				continue
			}
			g.rules = append(g.rules, i)
			if !ruleSingleSite(r) {
				g.local = false
			}
		}
		groups = append(groups, g)
	}
	return groups
}

// ruleSingleSite reports whether every location variable in the rule is the
// same (or absent), i.e. evaluation never crosses nodes.
func ruleSingleSite(r *colog.Rule) bool {
	locs := map[string]bool{}
	note := func(a *colog.Atom) {
		if v := a.LocVar(); v != "" {
			locs[v] = true
		}
	}
	note(r.Head)
	for _, l := range r.Body {
		if al, ok := l.(*colog.AtomLit); ok {
			note(al.Atom)
		}
	}
	return len(locs) <= 1
}

// ruleJoinsEvent reports whether any body atom of r is an event table.
func (n *Node) ruleJoinsEvent(r *colog.Rule) bool {
	for _, l := range r.Body {
		if al, ok := l.(*colog.AtomLit); ok {
			if t := n.tables[al.Atom.Pred]; t != nil && t.event {
				return true
			}
		}
	}
	return false
}

// initDred wires the recursive-group metadata into the node.
func (n *Node) initDred() {
	n.groups = n.buildRecursiveGroups(n.res)
	n.groupOfHead = map[int]int{}
	n.feedsGroup = map[string][]int{}
	for gi, g := range n.groups {
		if !g.local {
			continue // counting fallback
		}
		for _, ri := range g.rules {
			n.groupOfHead[ri] = gi
			for _, l := range n.res.Program.Rules[ri].Body {
				if al, ok := l.(*colog.AtomLit); ok {
					n.feedsGroup[al.Atom.Pred] = append(n.feedsGroup[al.Atom.Pred], gi)
				}
			}
		}
	}
}

// markDirtyFor flags the groups affected by a deletion of pred.
func (n *Node) markDirtyFor(pred string) bool {
	gids := n.feedsGroup[pred]
	for _, gi := range gids {
		n.dirtyGroups[gi] = true
	}
	return len(gids) > 0
}

// recomputeGroup rebuilds the group's predicates from their base facts
// (externally inserted or network-delivered rows) by naive fixpoint
// evaluation over the group's rules, then installs the result and
// propagates the visible difference downstream.
func (n *Node) recomputeGroup(gi int) error {
	g := n.groups[gi]
	// Working state: base rows only.
	work := map[string]map[string][]colog.Value{} // pred -> key -> vals
	for p := range g.preds {
		work[p] = map[string][]colog.Value{}
		t := n.tables[p]
		if t == nil {
			continue
		}
		t.rows.Range(func(r store.Row) {
			if r.Base > 0 {
				work[p][valsKey(r.Vals)] = r.Vals
			}
		})
	}
	rowsOf := func(pred string) [][]colog.Value {
		if m, in := work[pred]; in {
			out := make([][]colog.Value, 0, len(m))
			for _, v := range m {
				out = append(out, v)
			}
			return out
		}
		if t := n.tables[pred]; t != nil {
			return t.snapshotUnordered()
		}
		return nil
	}
	// Naive fixpoint.
	for changed := true; changed; {
		changed = false
		for _, ri := range g.rules {
			rule := n.res.Program.Rules[ri]
			derived, err := n.evalRuleGround(rule, rowsOf)
			if err != nil {
				return err
			}
			for _, vals := range derived {
				k := valsKey(vals)
				if _, ok := work[rule.Head.Pred][k]; !ok {
					work[rule.Head.Pred][k] = vals
					changed = true
				}
			}
		}
	}
	// Install and diff.
	for p := range g.preds {
		t := n.tables[p]
		if t == nil {
			continue
		}
		oldRows := map[string][]colog.Value{}
		baseOf := map[string]int{}
		seqOf := map[string]uint64{}
		t.rows.Range(func(r store.Row) {
			k := valsKey(r.Vals)
			oldRows[k] = r.Vals
			baseOf[k] = r.Base
			seqOf[k] = r.Seq
		})
		newRows := work[p]
		// Fresh rows get arrival numbers in deterministic (sorted-key) order;
		// surviving rows keep theirs.
		var freshKeys []string
		for k := range newRows {
			if _, had := seqOf[k]; !had {
				freshKeys = append(freshKeys, k)
			}
		}
		sort.Strings(freshKeys)
		for _, k := range freshKeys {
			seqOf[k] = t.nextSeq
			t.nextSeq++
		}
		t.rows.Clear()
		t.dropIndexes()
		t.dropScanCache()
		for k, vals := range newRows {
			t.rows.Put([]byte(keyOf(vals, t.keyCols)), store.Row{
				Vals:  vals,
				Count: 1,
				Base:  baseOf[k],
				Seq:   seqOf[k],
			})
		}
		for k, vals := range oldRows {
			if _, kept := newRows[k]; !kept {
				t.rememberSeq(keyOf(vals, t.keyCols), seqOf[k])
				if err := n.processTransition(delta{Tuple{p, vals}, -1, true}, gi); err != nil {
					return err
				}
			}
		}
		for k, vals := range newRows {
			if _, had := oldRows[k]; !had {
				if err := n.processTransition(delta{Tuple{p, vals}, +1, true}, gi); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// evalRuleGround enumerates all ground derivations of a regular rule over
// the provided row source, returning the head tuples (used by the
// recompute fixpoint; no aggregates — analysis rejects recursion through
// aggregates).
func (n *Node) evalRuleGround(rule *colog.Rule, rowsOf func(string) [][]colog.Value) ([][]colog.Value, error) {
	var out [][]colog.Value
	label := ruleName(rule)
	type item struct {
		lit  colog.Literal
		done bool
	}
	lits := make([]item, len(rule.Body))
	for i, l := range rule.Body {
		lits[i] = item{lit: l}
	}
	var rec func(env map[string]colog.Value, left int) error
	rec = func(env map[string]colog.Value, left int) error {
		if left == 0 {
			vals := make([]colog.Value, len(rule.Head.Args))
			for i, arg := range rule.Head.Args {
				v, err := evalGround(arg, mapEnv(env))
				if err != nil {
					return everrf(label, "head arg %d: %v", i, err)
				}
				vals[i] = v
			}
			out = append(out, vals)
			return nil
		}
		// Ready expressions first, then any atom.
		pick := -1
		for i := range lits {
			if lits[i].done {
				continue
			}
			switch x := lits[i].lit.(type) {
			case *colog.CondLit:
				if _, _, ok := bindableEq(x.Expr, boundSet(env)); ok || termBound(x.Expr, mapEnv(env)) {
					pick = i
				}
			case *colog.AssignLit:
				if termBound(x.Expr, mapEnv(env)) {
					pick = i
				}
			}
			if pick >= 0 {
				break
			}
		}
		if pick < 0 {
			for i := range lits {
				if !lits[i].done {
					if _, ok := lits[i].lit.(*colog.AtomLit); ok {
						pick = i
						break
					}
				}
			}
		}
		if pick < 0 {
			return everrf(label, "cannot order literals during recompute")
		}
		lits[pick].done = true
		defer func() { lits[pick].done = false }()
		switch x := lits[pick].lit.(type) {
		case *colog.AtomLit:
			for _, rowVals := range rowsOf(x.Atom.Pred) {
				env2 := cloneEnv(env)
				if matchAtom(x.Atom, rowVals, env2) {
					if err := rec(env2, left-1); err != nil {
						return err
					}
				}
			}
			return nil
		case *colog.CondLit:
			if name, expr, ok := bindableEq(x.Expr, boundSet(env)); ok {
				v, err := evalGround(expr, mapEnv(env))
				if err != nil {
					return everrf(label, "%v", err)
				}
				env2 := cloneEnv(env)
				env2[name] = v
				return rec(env2, left-1)
			}
			v, err := evalGround(x.Expr, mapEnv(env))
			if err != nil {
				return everrf(label, "%v", err)
			}
			if v.Kind != colog.KindBool {
				return everrf(label, "condition %s non-boolean", x.Expr)
			}
			if !v.B {
				return nil
			}
			return rec(env, left-1)
		case *colog.AssignLit:
			v, err := evalGround(x.Expr, mapEnv(env))
			if err != nil {
				return everrf(label, "%v", err)
			}
			env2 := cloneEnv(env)
			env2[x.Var] = v
			return rec(env2, left-1)
		}
		return everrf(label, "unknown literal")
	}
	if err := rec(map[string]colog.Value{}, len(lits)); err != nil {
		return nil, err
	}
	return out, nil
}

func boundSet(env map[string]colog.Value) map[string]bool {
	out := make(map[string]bool, len(env))
	for k := range env {
		out[k] = true
	}
	return out
}
