package core

// Versioned table-checkpoint codec. A checkpoint captures a node's entire
// evaluation state at a quiescent point (queue drained, no recompute
// pending) so RestoreNode can rebuild an instance that is byte-identical to
// the original — including every row's arrival-order seq number, which is
// what keeps a recovered node's join enumeration, derivation order, and
// solver traces aligned with a node that never failed. The layout reuses
// the varint wire primitives of the delta codec (tuple.go) and is fully
// deterministic (sorted sections, rows in seq order), so two checkpoints of
// identical states are byte-equal.

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/colog"
	"repro/internal/store"
)

const checkpointVersion = 1

// ExportCheckpoint serializes the node's state: all non-event tables (rows
// with seq, visibility count, and base count, plus the seq allocator and
// the freed-seq tombstones), the incremental aggregate views, the solver
// materialization memory, and both replica mirrors. It fails if evaluation
// is in progress.
func (n *Node) ExportCheckpoint() ([]byte, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.exportCheckpointLocked()
}

// CheckpointAndCompact exports a checkpoint and — when the node has a
// durable delta log — compacts the log down to a single checkpoint record,
// truncating the replayable prefix, and reclaims table-file space. The
// export, log reset, and compaction happen under one hold of the node
// lock, so no transition can land between the exported state and the
// truncated log (which would make replay skip it).
func (n *Node) CheckpointAndCompact() ([]byte, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	data, err := n.exportCheckpointLocked()
	if err != nil || n.wal == nil {
		return data, err
	}
	rec := make([]byte, 0, len(data)+1)
	rec = append(rec, walRecCheckpoint)
	rec = append(rec, data...)
	if err := n.wal.Reset(rec); err != nil {
		return data, fmt.Errorf("core: compacting log of %s: %w", n.Addr, err)
	}
	if err := n.store.Compact(); err != nil {
		return data, fmt.Errorf("core: compacting tables of %s: %w", n.Addr, err)
	}
	return data, nil
}

func (n *Node) exportCheckpointLocked() ([]byte, error) {
	if n.draining || n.qhead < len(n.queue) || len(n.dirtyGroups) > 0 {
		return nil, fmt.Errorf("core: checkpoint of %s: evaluation in progress", n.Addr)
	}
	buf := []byte{checkpointVersion}
	var err error

	// Tables.
	var names []string
	for name, t := range n.tables {
		if !t.event {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, name := range names {
		t := n.tables[name]
		buf = appendWireString(buf, name)
		buf = binary.AppendUvarint(buf, uint64(t.arity))
		buf = binary.AppendUvarint(buf, t.nextSeq)
		rows := make([]store.Row, 0, t.rows.Len())
		t.rows.Range(func(r store.Row) {
			rows = append(rows, r)
		})
		sort.Slice(rows, func(i, j int) bool { return rows[i].Seq < rows[j].Seq })
		buf = binary.AppendUvarint(buf, uint64(len(rows)))
		for _, r := range rows {
			buf = binary.AppendUvarint(buf, r.Seq)
			buf = binary.AppendUvarint(buf, uint64(r.Count))
			buf = binary.AppendUvarint(buf, uint64(r.Base))
			if buf, err = appendWireVals(buf, r.Vals); err != nil {
				return nil, fmt.Errorf("core: checkpoint of %s: table %s: %w", n.Addr, name, err)
			}
		}
		freed := make([]string, 0, len(t.freedSeq))
		for k := range t.freedSeq {
			freed = append(freed, k)
		}
		sort.Strings(freed)
		buf = binary.AppendUvarint(buf, uint64(len(freed)))
		for _, k := range freed {
			buf = appendWireString(buf, k)
			buf = binary.AppendUvarint(buf, t.freedSeq[k])
		}
	}

	// Aggregate views.
	var ruleIdxs []int
	for idx, st := range n.aggs {
		if len(st.groups) > 0 {
			ruleIdxs = append(ruleIdxs, idx)
		}
	}
	sort.Ints(ruleIdxs)
	buf = binary.AppendUvarint(buf, uint64(len(ruleIdxs)))
	for _, idx := range ruleIdxs {
		st := n.aggs[idx]
		buf = binary.AppendUvarint(buf, uint64(idx))
		buf = append(buf, byte(st.fn))
		gkeys := make([]string, 0, len(st.groups))
		for k := range st.groups {
			gkeys = append(gkeys, k)
		}
		sort.Strings(gkeys)
		buf = binary.AppendUvarint(buf, uint64(len(gkeys)))
		for _, gk := range gkeys {
			g := st.groups[gk]
			if buf, err = appendWireVals(buf, g.groupVals); err != nil {
				return nil, fmt.Errorf("core: checkpoint of %s: aggregate group: %w", n.Addr, err)
			}
			if g.emitted != nil {
				buf = append(buf, 1)
				buf = appendWireString(buf, g.emitted.Pred)
				if buf, err = appendWireVals(buf, g.emitted.Vals); err != nil {
					return nil, fmt.Errorf("core: checkpoint of %s: aggregate head: %w", n.Addr, err)
				}
			} else {
				buf = append(buf, 0)
			}
			ikeys := make([]string, 0, len(g.items))
			for k := range g.items {
				ikeys = append(ikeys, k)
			}
			sort.Strings(ikeys)
			buf = binary.AppendUvarint(buf, uint64(len(ikeys)))
			for _, ik := range ikeys {
				it := g.items[ik]
				if buf, err = appendWireVals(buf, []colog.Value{it.val}); err != nil {
					return nil, fmt.Errorf("core: checkpoint of %s: aggregate item: %w", n.Addr, err)
				}
				buf = binary.AppendUvarint(buf, uint64(it.count))
			}
		}
	}

	// Solver materialization memory.
	var mpreds []string
	for pred, tuples := range n.lastMaterialized {
		if len(tuples) > 0 {
			mpreds = append(mpreds, pred)
		}
	}
	sort.Strings(mpreds)
	buf = binary.AppendUvarint(buf, uint64(len(mpreds)))
	for _, pred := range mpreds {
		tuples := n.lastMaterialized[pred]
		buf = appendWireString(buf, pred)
		buf = binary.AppendUvarint(buf, uint64(len(tuples)))
		for _, t := range tuples {
			if buf, err = appendWireVals(buf, t.Vals); err != nil {
				return nil, fmt.Errorf("core: checkpoint of %s: materialization %s: %w", n.Addr, pred, err)
			}
		}
	}

	// Replica mirrors (sent, then recv).
	for _, mirrors := range []map[string]map[string]*mirrorSet{n.repl.sent, n.repl.recv} {
		var peers []string
		for peer := range mirrors {
			peers = append(peers, peer)
		}
		sort.Strings(peers)
		buf = binary.AppendUvarint(buf, uint64(len(peers)))
		for _, peer := range peers {
			byPred := mirrors[peer]
			buf = appendWireString(buf, peer)
			preds := sortedMirrorPreds(byPred)
			buf = binary.AppendUvarint(buf, uint64(len(preds)))
			for _, pred := range preds {
				ms := byPred[pred]
				buf = appendWireString(buf, pred)
				buf = binary.AppendUvarint(buf, uint64(ms.live))
				for _, e := range ms.entries {
					if e.count <= 0 {
						continue
					}
					buf = binary.AppendUvarint(buf, uint64(e.count))
					if buf, err = appendWireVals(buf, e.vals); err != nil {
						return nil, fmt.Errorf("core: checkpoint of %s: mirror %s: %w", n.Addr, pred, err)
					}
				}
			}
		}
	}
	return buf, nil
}

// ImportCheckpoint replaces the node's state with a checkpoint exported by
// ExportCheckpoint for the same program. All current rows, aggregate views,
// mirrors, and cached grounding state are discarded; nothing is derived and
// nothing is sent — the checkpoint is already a fixpoint.
func (n *Node) ImportCheckpoint(data []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	fail := func(what string) error {
		return fmt.Errorf("core: importing checkpoint at %s: malformed %s", n.Addr, what)
	}
	if len(data) == 0 || data[0] != checkpointVersion {
		return fail("header")
	}
	rest := data[1:]

	// Reset every table and the derived runtime state.
	for _, t := range n.tables {
		t.rows.Clear()
		t.nextSeq = 0
		t.freedSeq = nil
		t.dropIndexes()
		t.dropScanCache()
	}
	n.aggs = map[int]*aggState{}
	n.lastMaterialized = map[string][]Tuple{}
	n.repl.init()
	n.queue = n.queue[:0]
	n.qhead = 0
	n.outbox = nil
	n.dirtyGroups = map[int]bool{}
	n.ground = nil
	n.groundDeltas = nil
	n.LastSolveResult = nil

	// Tables.
	nTables, w := binary.Uvarint(rest)
	if w <= 0 {
		return fail("table count")
	}
	rest = rest[w:]
	for i := uint64(0); i < nTables; i++ {
		name, r, ok := readWireString(rest)
		if !ok {
			return fail("table name")
		}
		rest = r
		t := n.tables[name]
		if t == nil {
			return fmt.Errorf("core: importing checkpoint at %s: unknown table %s (program mismatch?)", n.Addr, name)
		}
		arity, w := binary.Uvarint(rest)
		if w <= 0 {
			return fail("arity")
		}
		rest = rest[w:]
		if int(arity) != t.arity {
			return fmt.Errorf("core: importing checkpoint at %s: table %s arity %d, checkpoint has %d", n.Addr, name, t.arity, arity)
		}
		if t.nextSeq, w = binary.Uvarint(rest); w <= 0 {
			return fail("next seq")
		}
		rest = rest[w:]
		nRows, w := binary.Uvarint(rest)
		if w <= 0 {
			return fail("row count")
		}
		rest = rest[w:]
		for j := uint64(0); j < nRows; j++ {
			seq, w := binary.Uvarint(rest)
			if w <= 0 {
				return fail("row seq")
			}
			rest = rest[w:]
			count, w := binary.Uvarint(rest)
			if w <= 0 {
				return fail("row visibility count")
			}
			rest = rest[w:]
			base, w := binary.Uvarint(rest)
			if w <= 0 {
				return fail("row base count")
			}
			rest = rest[w:]
			vals, r, err := readWireVals(rest)
			if err != nil {
				return fail("row values")
			}
			rest = r
			if len(vals) != t.arity {
				return fail("row arity")
			}
			t.keyScratch = t.appendRowKey(t.keyScratch[:0], vals)
			t.rows.Put(t.keyScratch, store.Row{Vals: vals, Count: int(count), Base: int(base), Seq: seq})
		}
		nFreed, w := binary.Uvarint(rest)
		if w <= 0 {
			return fail("freed-seq count")
		}
		rest = rest[w:]
		for j := uint64(0); j < nFreed; j++ {
			key, r, ok := readWireString(rest)
			if !ok {
				return fail("freed-seq key")
			}
			rest = r
			seq, w := binary.Uvarint(rest)
			if w <= 0 {
				return fail("freed-seq value")
			}
			rest = rest[w:]
			if t.freedSeq == nil {
				t.freedSeq = map[string]uint64{}
			}
			t.freedSeq[key] = seq
		}
	}

	// Aggregate views.
	nAggs, w := binary.Uvarint(rest)
	if w <= 0 {
		return fail("aggregate count")
	}
	rest = rest[w:]
	for i := uint64(0); i < nAggs; i++ {
		ruleIdx, w := binary.Uvarint(rest)
		if w <= 0 {
			return fail("aggregate rule index")
		}
		rest = rest[w:]
		if len(rest) == 0 {
			return fail("aggregate function")
		}
		st := &aggState{fn: colog.AggFunc(rest[0]), groups: map[string]*aggGroup{}}
		rest = rest[1:]
		nGroups, w := binary.Uvarint(rest)
		if w <= 0 {
			return fail("aggregate group count")
		}
		rest = rest[w:]
		for j := uint64(0); j < nGroups; j++ {
			groupVals, r, err := readWireVals(rest)
			if err != nil {
				return fail("aggregate group key")
			}
			rest = r
			g := &aggGroup{groupVals: groupVals, items: map[string]*aggItem{}, intOnly: true}
			if len(rest) == 0 {
				return fail("aggregate emitted flag")
			}
			hasEmitted := rest[0] != 0
			rest = rest[1:]
			if hasEmitted {
				pred, r, ok := readWireString(rest)
				if !ok {
					return fail("aggregate emitted predicate")
				}
				rest = r
				vals, r2, err := readWireVals(rest)
				if err != nil {
					return fail("aggregate emitted values")
				}
				rest = r2
				t := Tuple{pred, vals}
				g.emitted = &t
			}
			nItems, w := binary.Uvarint(rest)
			if w <= 0 {
				return fail("aggregate item count")
			}
			rest = rest[w:]
			for k := uint64(0); k < nItems; k++ {
				vals, r, err := readWireVals(rest)
				if err != nil || len(vals) != 1 {
					return fail("aggregate item value")
				}
				rest = r
				count, w := binary.Uvarint(rest)
				if w <= 0 {
					return fail("aggregate item multiplicity")
				}
				rest = rest[w:]
				v := vals[0]
				g.items[string(v.AppendKey(nil))] = &aggItem{val: v, count: int(count)}
				g.total += int(count)
				if v.Kind == colog.KindInt {
					a := v.I
					if a < 0 {
						a = -a
					}
					g.sumI += v.I * int64(count)
					g.sumAbsI += a * int64(count)
				} else {
					g.intOnly = false
				}
			}
			st.groups[valsKey(groupVals)] = g
		}
		n.aggs[int(ruleIdx)] = st
	}

	// Solver materialization memory.
	nMat, w := binary.Uvarint(rest)
	if w <= 0 {
		return fail("materialization count")
	}
	rest = rest[w:]
	for i := uint64(0); i < nMat; i++ {
		pred, r, ok := readWireString(rest)
		if !ok {
			return fail("materialization predicate")
		}
		rest = r
		nTuples, w := binary.Uvarint(rest)
		if w <= 0 {
			return fail("materialization tuple count")
		}
		rest = rest[w:]
		tuples := make([]Tuple, 0, nTuples)
		for j := uint64(0); j < nTuples; j++ {
			vals, r, err := readWireVals(rest)
			if err != nil {
				return fail("materialization values")
			}
			rest = r
			tuples = append(tuples, Tuple{pred, vals})
		}
		n.lastMaterialized[pred] = tuples
	}

	// Replica mirrors.
	for _, mirrors := range []map[string]map[string]*mirrorSet{n.repl.sent, n.repl.recv} {
		nPeers, w := binary.Uvarint(rest)
		if w <= 0 {
			return fail("mirror peer count")
		}
		rest = rest[w:]
		for i := uint64(0); i < nPeers; i++ {
			peer, r, ok := readWireString(rest)
			if !ok {
				return fail("mirror peer")
			}
			rest = r
			nPreds, w := binary.Uvarint(rest)
			if w <= 0 {
				return fail("mirror table count")
			}
			rest = rest[w:]
			for j := uint64(0); j < nPreds; j++ {
				pred, r, ok := readWireString(rest)
				if !ok {
					return fail("mirror predicate")
				}
				rest = r
				nEntries, w := binary.Uvarint(rest)
				if w <= 0 {
					return fail("mirror entry count")
				}
				rest = rest[w:]
				ms := &mirrorSet{index: map[string]int{}}
				for k := uint64(0); k < nEntries; k++ {
					count, w := binary.Uvarint(rest)
					if w <= 0 || count == 0 {
						return fail("mirror entry multiplicity")
					}
					rest = rest[w:]
					vals, r, err := readWireVals(rest)
					if err != nil {
						return fail("mirror entry values")
					}
					rest = r
					key := valsKey(vals)
					ms.entries = append(ms.entries, mirrorEntry{key: key, hash: fnvHash(key), vals: vals, count: int(count)})
					ms.index[key] = len(ms.entries) - 1
					ms.live++
				}
				if mirrors[peer] == nil {
					mirrors[peer] = map[string]*mirrorSet{}
				}
				mirrors[peer][pred] = ms
			}
		}
	}
	if len(rest) != 0 {
		return fail("trailer")
	}
	return nil
}
