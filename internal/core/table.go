package core

import (
	"sort"

	"repro/internal/colog"
)

// table stores the visible rows of one predicate at one node, with
// derivation counts for incremental view maintenance. Tables follow
// declarative networking semantics:
//
//   - Materialized tables have an optional primary key (a subset of
//     columns). Inserting a row whose key exists with different values
//     replaces the old row, propagating a deletion delta first — this is
//     how Follow-the-Sun rule r3 updates curVm in place.
//   - Event tables (e.g. the solver's materialized migVm output) are never
//     stored: their deltas stream through the rules exactly once.
type table struct {
	name    string
	arity   int
	keyCols []int // nil = whole row is the key (set semantics)
	event   bool
	rows    map[string]*row // key -> row
	indexes map[string]*tableIndex
}

type row struct {
	vals  []colog.Value
	count int
	// base counts the contributions that did not come from local rule
	// derivations (external inserts, network deliveries, solver
	// materializations); the recursive-group recompute rebuilds derived
	// tuples from exactly these rows.
	base int
}

func newTable(name string, arity int, keyCols []int, event bool) *table {
	return &table{name: name, arity: arity, keyCols: keyCols, event: event, rows: map[string]*row{}}
}

// delta is a pending tuple change with a sign (+1 insert, -1 delete).
// derived marks deltas produced by local rule evaluation (as opposed to
// external inserts, network deliveries, and solver materializations).
type delta struct {
	tuple   Tuple
	sign    int
	derived bool
}

// apply merges a signed tuple into the table and returns the visible-row
// transitions to propagate: an insertion becomes visible only on a 0->1
// count transition, a deletion only on 1->0, and a keyed replacement yields
// a deletion of the old row followed by the insertion of the new one.
func (t *table) apply(vals []colog.Value, sign int, derived bool) []delta {
	if t.event {
		if sign > 0 {
			return []delta{{Tuple{t.name, vals}, +1, derived}}
		}
		return nil
	}
	baseInc := 1
	if derived {
		baseInc = 0
	}
	var out []delta
	k := keyOf(vals, t.keyCols)
	existing := t.rows[k]
	if sign > 0 {
		if existing != nil {
			if valsKey(existing.vals) == valsKey(vals) {
				existing.count++
				existing.base += baseInc
				return nil
			}
			// Keyed replacement: retract the old row first.
			out = append(out, delta{Tuple{t.name, existing.vals}, -1, derived})
			t.indexRemove(existing.vals)
			delete(t.rows, k)
		}
		stored := append([]colog.Value(nil), vals...)
		t.rows[k] = &row{vals: stored, count: 1, base: baseInc}
		t.indexInsert(stored)
		out = append(out, delta{Tuple{t.name, vals}, +1, derived})
		return out
	}
	// Deletion.
	if existing == nil || valsKey(existing.vals) != valsKey(vals) {
		return nil // deleting a non-existent row is a no-op
	}
	existing.count--
	if existing.base > 0 && baseInc > 0 {
		existing.base--
	}
	if existing.count <= 0 {
		delete(t.rows, k)
		t.indexRemove(existing.vals)
		out = append(out, delta{Tuple{t.name, existing.vals}, -1, derived})
	}
	return out
}

// contains reports whether the exact row is visible.
func (t *table) contains(vals []colog.Value) bool {
	r, ok := t.rows[keyOf(vals, t.keyCols)]
	return ok && valsKey(r.vals) == valsKey(vals)
}

// snapshot returns the visible rows sorted deterministically.
func (t *table) snapshot() [][]colog.Value {
	out := make([][]colog.Value, 0, len(t.rows))
	for _, r := range t.rows {
		out = append(out, r.vals)
	}
	sort.Slice(out, func(i, j int) bool {
		return valsKey(out[i]) < valsKey(out[j])
	})
	return out
}

// size returns the number of visible rows.
func (t *table) size() int { return len(t.rows) }

// clear removes all rows without emitting deltas (used only for test setup
// and solver-output replacement where deltas are produced explicitly).
func (t *table) clear() {
	t.rows = map[string]*row{}
	t.dropIndexes()
}
