package core

import (
	"sort"

	"repro/internal/colog"
	"repro/internal/store"
)

// table stores the visible rows of one predicate at one node, with
// derivation counts for incremental view maintenance. Tables follow
// declarative networking semantics:
//
//   - Materialized tables have an optional primary key (a subset of
//     columns). Inserting a row whose key exists with different values
//     replaces the old row, propagating a deletion delta first — this is
//     how Follow-the-Sun rule r3 updates curVm in place.
//   - Event tables (e.g. the solver's materialized migVm output) are never
//     stored: their deltas stream through the rules exactly once.
//
// Row storage is pluggable (see internal/store): rows live in a RowStore —
// an in-memory map by default, a disk-backed spill table under the durable
// backend. The table keeps all ordering state (seq numbers, freed-seq
// tombstones, scan caches) itself, so enumeration order is byte-identical
// whichever backend holds the rows.
type table struct {
	name     string
	arity    int
	keyCols  []int // nil = whole row is the key (set semantics)
	event    bool
	rows     store.RowStore // key -> row
	indexes  map[string]*tableIndex
	indexGen uint64 // bumped on dropIndexes; validates cached index pointers
	// keyScratch is reused for building row keys, so lookups and deletes
	// never allocate; only inserting a new row materializes the string.
	keyScratch []byte
	// stableCache memoizes the insertion-ordered visible-row list between
	// mutations (see snapshotStable); nextSeq numbers arrivals.
	stableCache [][]colog.Value
	nextSeq     uint64
	// freedSeq remembers the arrival number of deleted rows by key, so a
	// delete/re-insert pair — how the delta pipeline expresses an update —
	// puts the row back at its old position instead of the end. Bounded by
	// dropping the map when it dwarfs the live table.
	freedSeq map[string]uint64
}

// appendRowKey builds the row's primary key into dst.
func (t *table) appendRowKey(dst []byte, vals []colog.Value) []byte {
	if t.keyCols == nil {
		return appendValsKey(dst, vals)
	}
	for i, c := range t.keyCols {
		if i > 0 {
			dst = append(dst, '|')
		}
		dst = vals[c].AppendKey(dst)
	}
	return dst
}

func newTable(name string, arity int, keyCols []int, event bool, rows store.RowStore) *table {
	return &table{name: name, arity: arity, keyCols: keyCols, event: event, rows: rows}
}

// delta is a pending tuple change with a sign (+1 insert, -1 delete).
// derived marks deltas produced by local rule evaluation (as opposed to
// external inserts, network deliveries, and solver materializations).
type delta struct {
	tuple   Tuple
	sign    int
	derived bool
}

// apply merges a signed tuple into the table and returns the visible-row
// transitions to propagate (at most two, in out[:n]): an insertion becomes
// visible only on a 0->1 count transition, a deletion only on 1->0, and a
// keyed replacement yields a deletion of the old row followed by the
// insertion of the new one. The fixed-size return keeps the delta hot path
// allocation-free.
func (t *table) apply(vals []colog.Value, sign int, derived bool) (out [2]delta, n int) {
	if t.event {
		if sign > 0 {
			out[0] = delta{Tuple{t.name, vals}, +1, derived}
			n = 1
		}
		return out, n
	}
	baseInc := 1
	if derived {
		baseInc = 0
	}
	t.keyScratch = t.appendRowKey(t.keyScratch[:0], vals)
	kb := t.keyScratch
	existing, exists := t.rows.Get(kb)
	if sign > 0 {
		var seq uint64
		if exists {
			if valsEqual(existing.Vals, vals) {
				// Count bump only: the stored values are untouched, so the
				// backend can absorb it without rewriting the row.
				t.rows.SetCounts(kb, existing.Count+1, existing.Base+baseInc)
				return out, 0
			}
			// Keyed replacement: retract the old row first. The new row
			// inherits the old row's stable position.
			seq = existing.Seq
			out[n] = delta{Tuple{t.name, existing.Vals}, -1, derived}
			n++
			t.indexRemove(existing.Vals)
			t.rows.Delete(kb)
		} else if s, had := t.freedSeq[string(kb)]; had {
			seq = s
			delete(t.freedSeq, string(kb))
		} else {
			seq = t.nextSeq
			t.nextSeq++
		}
		// Derived tuples are freshly built by rule-head projection and
		// uniquely owned, so the row can adopt them; external inserts may
		// alias caller memory and are copied.
		stored := vals
		if !derived {
			stored = append([]colog.Value(nil), vals...)
		}
		t.rows.Put(kb, store.Row{Vals: stored, Count: 1, Base: baseInc, Seq: seq})
		t.indexInsert(stored, seq)
		t.stableCache = nil
		out[n] = delta{Tuple{t.name, vals}, +1, derived}
		n++
		return out, n
	}
	// Deletion.
	if !exists || !valsEqual(existing.Vals, vals) {
		return out, 0 // deleting a non-existent row is a no-op
	}
	existing.Count--
	if existing.Base > 0 && baseInc > 0 {
		existing.Base--
	}
	if existing.Count <= 0 {
		t.rows.Delete(kb)
		t.indexRemove(existing.Vals)
		t.stableCache = nil
		t.rememberSeq(string(kb), existing.Seq)
		out[0] = delta{Tuple{t.name, existing.Vals}, -1, derived}
		n = 1
	} else {
		t.rows.SetCounts(kb, existing.Count, existing.Base)
	}
	return out, n
}

// contains reports whether the exact row is visible.
func (t *table) contains(vals []colog.Value) bool {
	t.keyScratch = t.appendRowKey(t.keyScratch[:0], vals)
	r, ok := t.rows.Get(t.keyScratch)
	return ok && valsEqual(r.Vals, vals)
}

// snapshot returns the visible rows sorted deterministically.
func (t *table) snapshot() [][]colog.Value {
	out := make([][]colog.Value, 0, t.rows.Len())
	t.rows.Range(func(r store.Row) {
		out = append(out, r.Vals)
	})
	sort.Slice(out, func(i, j int) bool {
		return valsKey(out[i]) < valsKey(out[j])
	})
	return out
}

// rememberSeq tombstones a deleted row's arrival number under its key.
func (t *table) rememberSeq(key string, seq uint64) {
	if t.freedSeq == nil {
		t.freedSeq = map[string]uint64{}
	}
	if len(t.freedSeq) > 4*t.rows.Len()+4096 {
		t.freedSeq = map[string]uint64{} // runaway churn: forfeit stability
	}
	t.freedSeq[key] = seq
}

// snapshotStable returns the visible rows in arrival order: rows are
// numbered as they first become visible, and a keyed replacement keeps its
// predecessor's number. The grounder enumerates rows in this order — it is
// deterministic for a deterministic update sequence (like the sorted
// snapshot) but, unlike sorting by row content, it does not move a row when
// only its values change, which keeps incremental re-grounding's cached
// emission order identical to a fresh grounding's.
func (t *table) snapshotStable() [][]colog.Value {
	if t.stableCache == nil {
		rows := t.stableSeqRows()
		out := make([][]colog.Value, len(rows))
		for i, r := range rows {
			out[i] = r.vals
		}
		t.stableCache = out
	}
	return t.stableCache
}

// stableSeqRows returns the visible rows with their arrival numbers, sorted
// by seq: the enumeration an index build consumes, so freshly built buckets
// carry rows in exactly snapshotStable order.
func (t *table) stableSeqRows() []idxRow {
	rows := make([]idxRow, 0, t.rows.Len())
	t.rows.Range(func(r store.Row) {
		rows = append(rows, idxRow{r.Seq, r.Vals})
	})
	sort.Slice(rows, func(i, j int) bool { return rows[i].seq < rows[j].seq })
	return rows
}

// size returns the number of visible rows.
func (t *table) size() int { return t.rows.Len() }

// clear removes all rows without emitting deltas (used only for test setup
// and solver-output replacement where deltas are produced explicitly).
func (t *table) clear() {
	t.rows.Clear()
	t.dropIndexes()
	t.dropScanCache()
}

// dropScanCache invalidates the memoized scans (bulk row replacement).
func (t *table) dropScanCache() {
	t.stableCache = nil
}
