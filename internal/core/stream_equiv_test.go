package core_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/analysis"
	"repro/internal/colog"
	"repro/internal/core"
	"repro/internal/store"
)

// buildGroundModeNode parses a corpus program and builds one node with the
// given grounding mode, incremental setting, and storage backend (nil for
// the default in-memory one). The program and config are returned too so a
// caller can rebuild the node later (the disk lane replays its log).
func buildGroundModeNode(t *testing.T, name, mode string, incremental bool, st store.Store) (*core.Node, *analysis.Result, core.Config) {
	t.Helper()
	src, err := os.ReadFile(filepath.Join(corpusDir, name))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := colog.Parse(string(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := analysis.Analyze(prog, nil)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	cfg := core.Config{
		SolverPropagate:   true,
		Keys:              corpusKeys[name],
		GroundMode:        mode,
		SolverIncremental: incremental,
		Storage:           st,
	}
	node, err := core.NewNode("local", res, cfg, nil)
	if err != nil {
		t.Fatalf("node: %v", err)
	}
	return node, res, cfg
}

// TestStreamingGroundEquivalence drives random insert/delete/update churn
// scripts over every corpus program through three nodes in lockstep — a
// materialized-grounding node (the pre-streaming escape hatch), a streaming
// node, and a streaming node with incremental re-grounding on top — solving
// after every step and requiring bit-identical solve results (status,
// objective, model size, search-trace length, assignments) and identical
// table contents throughout. This is the pushdown-correctness gate: any
// join reordered, any compare hoisted past a constraint-posting op, or any
// row enumerated out of arrival order diverges the solver trace.
func TestStreamingGroundEquivalence(t *testing.T) {
	entries, err := os.ReadDir(corpusDir)
	if err != nil {
		t.Fatalf("corpus dir: %v", err)
	}
	for _, ent := range entries {
		if filepath.Ext(ent.Name()) != ".colog" {
			continue
		}
		t.Run(ent.Name(), func(t *testing.T) {
			mat, _, _ := buildGroundModeNode(t, ent.Name(), "materialized", false, nil)
			str, _, _ := buildGroundModeNode(t, ent.Name(), "streaming", false, nil)
			strInc, _, _ := buildGroundModeNode(t, ent.Name(), "streaming", true, nil)
			// The storage dimension: the same churn through a disk-backed
			// node must stay bit-identical to the in-memory lanes — the
			// ordered key encoding preserves arrival-order seqs, so join
			// enumeration and solver traces may not diverge.
			diskStore, err := store.Open("disk", t.TempDir(), false)
			if err != nil {
				t.Fatal(err)
			}
			defer diskStore.Close()
			strDisk, diskRes, diskCfg := buildGroundModeNode(t, ent.Name(), "streaming", false, diskStore)
			nodes := []*core.Node{mat, str, strInc, strDisk}
			labels := []string{"materialized", "streaming", "streaming+incremental", "streaming+disk"}

			rng := rand.New(rand.NewSource(int64(len(ent.Name()))*6133 + 17))
			keys := corpusKeys[ent.Name()]

			factPreds := map[string]bool{}
			for _, f := range mat.Program().Program.Facts {
				factPreds[f.Atom.Pred] = true
			}
			var preds []string
			for p := range factPreds {
				preds = append(preds, p)
			}
			sort.Strings(preds)

			apply := func(op func(n *core.Node) error) {
				t.Helper()
				for i, n := range nodes {
					if err := op(n); err != nil {
						t.Fatalf("%s: %v", labels[i], err)
					}
				}
			}

			for step := 0; step < 40; step++ {
				pred := preds[rng.Intn(len(preds))]
				rows := mat.Rows(pred)
				keyCols := map[int]bool{}
				for _, c := range keys[pred] {
					keyCols[c] = true
				}
				switch k := rng.Intn(4); {
				case k <= 1 && len(rows) > 0: // value update (twice as likely)
					row := append([]colog.Value(nil), rows[rng.Intn(len(rows))]...)
					var numCols []int
					for c, v := range row {
						if v.Kind == colog.KindInt && !keyCols[c] {
							numCols = append(numCols, c)
						}
					}
					if len(numCols) == 0 {
						continue
					}
					c := numCols[rng.Intn(len(numCols))]
					old := append([]colog.Value(nil), row...)
					row[c] = colog.IntVal(int64(1 + rng.Intn(60)))
					apply(func(n *core.Node) error {
						if err := n.Delete(pred, old...); err != nil {
							return err
						}
						return n.Insert(pred, row...)
					})
				case k == 2 && len(rows) > 1: // delete
					row := rows[rng.Intn(len(rows))]
					apply(func(n *core.Node) error { return n.Delete(pred, row...) })
				case k == 3 && len(rows) > 0: // insert a structurally new row
					row := append([]colog.Value(nil), rows[rng.Intn(len(rows))]...)
					switch row[0].Kind {
					case colog.KindInt:
						row[0] = colog.IntVal(int64(200 + step))
					case colog.KindString:
						row[0] = colog.StringVal(fmt.Sprintf("%s-s%d", row[0].S, step))
					default:
						continue
					}
					for c := 1; c < len(row); c++ {
						if row[c].Kind == colog.KindInt {
							row[c] = colog.IntVal(int64(1 + rng.Intn(40)))
						}
					}
					apply(func(n *core.Node) error { return n.Insert(pred, row...) })
				default:
					continue
				}

				results := make([]*core.SolveResult, len(nodes))
				for i, n := range nodes {
					r, err := n.Solve(core.SolveOptions{})
					if err != nil {
						t.Fatalf("step %d: %s solve: %v", step, labels[i], err)
					}
					results[i] = r
				}
				for i := 1; i < len(nodes); i++ {
					compareSolves(t, step, results[0], results[i])
					compareNodes(t, step, nodes[0], nodes[i])
				}
			}

			// Replay gate: rebuild the disk node purely from its write-ahead
			// log and require the same tables, row for row and seq for seq
			// (Rows iterates in arrival order). The snapshot comes first —
			// replay reuses the same backend, clearing the live tables.
			snap := map[string][][]colog.Value{}
			names := strDisk.TableNames()
			for _, pred := range names {
				snap[pred] = strDisk.Rows(pred)
			}
			replayed, err := core.ReplayNode("local", diskRes, diskCfg, nil)
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			for _, pred := range names {
				want, got := snap[pred], replayed.Rows(pred)
				if len(want) != len(got) {
					t.Fatalf("replayed table %s: %d vs %d rows", pred, len(got), len(want))
				}
				for i := range want {
					for j := range want[i] {
						if !want[i][j].Equal(got[i][j]) {
							t.Fatalf("replayed table %s row %d: %v vs %v", pred, i, got[i], want[i])
						}
					}
				}
			}
		})
	}
}
