package core

import (
	"math"
	"testing"

	"repro/internal/colog"
	"repro/internal/solver"
	"repro/internal/transport"
)

// acloudMini is the paper's ACloud program (section 4.2) verbatim.
const acloudMini = `
goal minimize C in hostStdevCpu(C).
var assign(Vid,Hid,V) forall toAssign(Vid,Hid).

r1 toAssign(Vid,Hid) <- vm(Vid,Cpu,Mem), host(Hid,Cpu2,Mem2).
d1 hostCpu(Hid,SUM<C>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), C==V*Cpu.
d2 hostStdevCpu(STDEV<C>) <- host(Hid,Cpu,Mem), hostCpu(Hid,Cpu2), C==Cpu+Cpu2.
d3 assignCount(Vid,SUM<V>) <- assign(Vid,Hid,V).
c1 assignCount(Vid,V) -> V==1.
d4 hostMem(Hid,SUM<M>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), M==V*Mem.
c2 hostMem(Hid,Mem) -> hostMemThres(Hid,M), Mem<=M.
`

func setupACloud(t *testing.T) *Node {
	t.Helper()
	n := newTestNode(t, acloudMini, Config{SolverPropagate: true})
	// Two hosts, three VMs. Host baseline CPU 0.
	n.Insert("host", sval("h1"), ival(0), ival(0))
	n.Insert("host", sval("h2"), ival(0), ival(0))
	n.Insert("hostMemThres", sval("h1"), ival(4096))
	n.Insert("hostMemThres", sval("h2"), ival(4096))
	n.Insert("vm", sval("v1"), ival(30), ival(1024))
	n.Insert("vm", sval("v2"), ival(20), ival(1024))
	n.Insert("vm", sval("v3"), ival(10), ival(1024))
	return n
}

func TestACloudSolveBalances(t *testing.T) {
	n := setupACloud(t)
	if rows(n, "toAssign") != 6 {
		t.Fatalf("toAssign rows = %d, want 6", rows(n, "toAssign"))
	}
	res, err := n.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != solver.StatusOptimal {
		t.Fatalf("Status = %v, want optimal", res.Status)
	}
	// Perfect split: {30} vs {20,10} -> stddev 0.
	if math.Abs(res.Objective) > 1e-9 {
		t.Fatalf("Objective = %v, want 0", res.Objective)
	}
	if res.NumVars != 6 {
		t.Fatalf("NumVars = %d, want 6", res.NumVars)
	}
	// Each VM on exactly one host.
	perVM := map[string]int64{}
	for _, a := range res.Assignments {
		if a.Pred != "assign" {
			t.Fatalf("unexpected assignment pred %s", a.Pred)
		}
		perVM[a.Vals[0].S] += a.Vals[2].I
	}
	for vm, cnt := range perVM {
		if cnt != 1 {
			t.Errorf("VM %s assigned %d times", vm, cnt)
		}
	}
	// Materialization: assign rows and the goal tuple are in the database.
	if rows(n, "assign") != 6 {
		t.Fatalf("assign not materialized: %d rows", rows(n, "assign"))
	}
	goalRow := row1(n, "hostStdevCpu")
	if goalRow == nil || math.Abs(goalRow[0].Num()) > 1e-9 {
		t.Fatalf("goal not materialized: %v", n.Rows("hostStdevCpu"))
	}
}

func TestACloudMemoryConstraint(t *testing.T) {
	n := newTestNode(t, acloudMini, Config{SolverPropagate: true})
	n.Insert("host", sval("h1"), ival(0), ival(0))
	n.Insert("host", sval("h2"), ival(0), ival(0))
	// h1 can hold only one 1024MB VM; h2 can hold many.
	n.Insert("hostMemThres", sval("h1"), ival(1024))
	n.Insert("hostMemThres", sval("h2"), ival(8192))
	n.Insert("vm", sval("v1"), ival(10), ival(1024))
	n.Insert("vm", sval("v2"), ival(10), ival(1024))
	n.Insert("vm", sval("v3"), ival(10), ival(1024))
	res, err := n.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible() {
		t.Fatalf("Status = %v", res.Status)
	}
	onH1 := int64(0)
	for _, a := range res.Assignments {
		if a.Vals[1].S == "h1" {
			onH1 += a.Vals[2].I
		}
	}
	if onH1 > 1 {
		t.Fatalf("memory constraint violated: %d VMs on h1", onH1)
	}
}

func TestACloudInfeasible(t *testing.T) {
	n := newTestNode(t, acloudMini, Config{SolverPropagate: true})
	n.Insert("host", sval("h1"), ival(0), ival(0))
	n.Insert("hostMemThres", sval("h1"), ival(100)) // too small for any VM
	n.Insert("vm", sval("v1"), ival(10), ival(1024))
	res, err := n.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != solver.StatusInfeasible {
		t.Fatalf("Status = %v, want infeasible", res.Status)
	}
	if rows(n, "assign") != 0 {
		t.Fatal("infeasible solve must not materialize")
	}
}

func TestSolveResultFeasible(t *testing.T) {
	r := &SolveResult{Status: solver.StatusFeasible}
	if !(solver.Status(r.Status) == solver.StatusFeasible) {
		t.Fatal("sanity")
	}
}

func TestACloudMigrationLimit(t *testing.T) {
	// The d5/d6/c3 extension limiting migrations (section 4.2).
	src := acloudMini + `
d5 migrate(Vid,Hid1,Hid2,C) <- assign(Vid,Hid1,V), origin(Vid,Hid2), Hid1!=Hid2, (V==1)==(C==1).
d6 migrateCount(SUM<C>) <- migrate(Vid,Hid1,Hid2,C).
c3 migrateCount(C) -> C<=max_migrates.
`
	cfg := Config{
		Params:          map[string]colog.Value{"max_migrates": colog.IntVal(0)},
		SolverPropagate: true,
	}
	n := newTestNode(t, src, cfg)
	n.Insert("host", sval("h1"), ival(0), ival(0))
	n.Insert("host", sval("h2"), ival(0), ival(0))
	n.Insert("hostMemThres", sval("h1"), ival(8192))
	n.Insert("hostMemThres", sval("h2"), ival(8192))
	n.Insert("vm", sval("v1"), ival(30), ival(1024))
	n.Insert("vm", sval("v2"), ival(20), ival(1024))
	// Both currently on h1; zero migrations allowed -> must stay.
	n.Insert("origin", sval("v1"), sval("h1"))
	n.Insert("origin", sval("v2"), sval("h1"))
	res, err := n.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible() {
		t.Fatalf("Status = %v", res.Status)
	}
	for _, a := range res.Assignments {
		vm, host, v := a.Vals[0].S, a.Vals[1].S, a.Vals[2].I
		if v == 1 && host != "h1" {
			t.Fatalf("VM %s migrated to %s despite max_migrates=0", vm, host)
		}
	}
}

func TestSolveWarmStartHint(t *testing.T) {
	n := setupACloud(t)
	// Hint everything onto h1 and give the solver no time to improve: the
	// first incumbent must reflect the hint.
	res, err := n.Solve(SolveOptions{
		Hint: func(pred string, vals []colog.Value) (int64, bool) {
			if vals[1].S == "h1" {
				return 1, true
			}
			return 0, true
		},
		FirstSolution: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible() {
		t.Fatalf("Status = %v", res.Status)
	}
	for _, a := range res.Assignments {
		want := int64(0)
		if a.Vals[1].S == "h1" {
			want = 1
		}
		if a.Vals[2].I != want {
			t.Fatalf("hint not honored: %v", a)
		}
	}
}

func TestSolveEmptyForallTable(t *testing.T) {
	n := newTestNode(t, acloudMini, Config{})
	// No vms/hosts at all.
	res, err := n.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != solver.StatusOptimal || res.NumVars != 0 {
		t.Fatalf("empty solve = %+v", res)
	}
}

func TestRepeatedSolveReplacesMaterialization(t *testing.T) {
	n := setupACloud(t)
	if _, err := n.Solve(SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	first := rows(n, "assign")
	// Remove one VM and re-solve; stale rows must disappear.
	n.Delete("vm", sval("v3"), ival(10), ival(1024))
	if _, err := n.Solve(SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	second := rows(n, "assign")
	if first != 6 || second != 4 {
		t.Fatalf("materialization rows: first=%d second=%d, want 6 then 4", first, second)
	}
}

func TestInvokeSolverEvent(t *testing.T) {
	n := setupACloud(t)
	called := false
	n.OnInvokeSolver = func(node *Node) {
		called = true
		if _, err := node.solveLocked(SolveOptions{}); err != nil {
			t.Errorf("solve from event: %v", err)
		}
	}
	n.Insert(InvokeSolverPred)
	if !called {
		t.Fatal("invokeSolver event did not fire")
	}
	if rows(n, "assign") != 6 {
		t.Fatal("solve from event did not materialize")
	}
}

func TestInvokeSolverDefaultHook(t *testing.T) {
	n := setupACloud(t)
	n.Insert(InvokeSolverPred)
	if n.LastSolveResult == nil || !n.LastSolveResult.Feasible() {
		t.Fatalf("default invokeSolver hook: %+v, err=%v", n.LastSolveResult, n.LastError)
	}
}

// wirelessMini is the appendix A.2 centralized channel selection program.
const wirelessMini = `
goal minimize C in totalCost(C).
var assign(X,Y,C) forall link(X,Y) domain availChannel.

d1 cost(X,Y,Z,C) <- assign(X,Y,C1), assign(X,Z,C2),
   Y!=Z, (C==1)==(|C1-C2|<F_mindiff).
d2 totalCost(SUM<C>) <- cost(X,Y,Z,C).
c1 assign(X,Y,C) -> primaryUser(X,C2), C!=C2.
c2 assign(X,Y,C) -> assign(Y,X,C).
d3 uniqueChannel(X,UNIQUE<C>) <- assign(X,Y,C).
c3 uniqueChannel(X,Count) -> numInterface(X,K), Count<=K.
`

func setupWireless(t *testing.T) *Node {
	t.Helper()
	cfg := Config{
		Params:          map[string]colog.Value{"F_mindiff": colog.IntVal(5)},
		SolverPropagate: false,
	}
	n := newTestNode(t, wirelessMini, cfg)
	for _, c := range []int64{1, 6, 11} {
		n.Insert("availChannel", ival(c))
	}
	// Triangle-free line topology a-b-c with symmetric links.
	for _, l := range [][2]string{{"a", "b"}, {"b", "a"}, {"b", "c"}, {"c", "b"}} {
		n.Insert("link", sval(l[0]), sval(l[1]))
	}
	for _, x := range []string{"a", "b", "c"} {
		n.Insert("numInterface", sval(x), ival(2))
	}
	return n
}

func TestWirelessChannelSelection(t *testing.T) {
	n := setupWireless(t)
	res, err := n.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != solver.StatusOptimal {
		t.Fatalf("Status = %v", res.Status)
	}
	// The two adjacent links at b can take channels 1 and 6 (or 6 and 11):
	// zero interference cost is achievable.
	if res.Objective != 0 {
		t.Fatalf("Objective = %v, want 0", res.Objective)
	}
	// Channel symmetry: assign(a,b,C) == assign(b,a,C).
	ch := map[string]int64{}
	for _, a := range res.Assignments {
		ch[a.Vals[0].S+">"+a.Vals[1].S] = a.Vals[2].I
	}
	if ch["a>b"] != ch["b>a"] || ch["b>c"] != ch["c>b"] {
		t.Fatalf("channel symmetry violated: %v", ch)
	}
	// Adjacent links at b use non-interfering channels.
	if d := ch["b>a"] - ch["b>c"]; d < 5 && d > -5 {
		t.Fatalf("interfering channels at b: %v", ch)
	}
}

func TestWirelessPrimaryUserConstraint(t *testing.T) {
	n := setupWireless(t)
	// Channel 6 is occupied by a primary user at every node; with F_mindiff=5
	// the only non-interfering pair {1,11} remains.
	for _, x := range []string{"a", "b", "c"} {
		n.Insert("primaryUser", sval(x), ival(6))
	}
	res, err := n.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible() {
		t.Fatalf("Status = %v", res.Status)
	}
	for _, a := range res.Assignments {
		if a.Vals[2].I == 6 {
			t.Fatalf("primary-user channel used: %v", a)
		}
	}
	if res.Objective != 0 {
		t.Fatalf("Objective = %v, want 0 (channels 1 and 11 available)", res.Objective)
	}
}

func TestWirelessInterfaceConstraint(t *testing.T) {
	n := setupWireless(t)
	// Give node b a single interface: both its links must share a channel,
	// which forces interference cost 2 (both directions at b).
	n.Delete("numInterface", sval("b"), ival(2))
	n.Insert("numInterface", sval("b"), ival(1))
	res, err := n.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible() {
		t.Fatalf("Status = %v", res.Status)
	}
	ch := map[string]int64{}
	for _, a := range res.Assignments {
		ch[a.Vals[0].S+">"+a.Vals[1].S] = a.Vals[2].I
	}
	if ch["b>a"] != ch["b>c"] {
		t.Fatalf("interface constraint violated at b: %v", ch)
	}
	if res.Objective == 0 {
		t.Fatal("expected positive interference cost with one interface")
	}
}

// followSunLocal exercises the distributed Follow-the-Sun program on two
// nodes connected by a loopback transport, including solver-output
// materialization as events and the r2/r3 post-solve updates.
const followSunTwoNode = `
goal minimize C in aggCost(@X,C).
var migVm(@X,Y,D,R) forall toMigVm(@X,Y,D) domain [-10,10].

r1 toMigVm(@X,Y,D) <- setLink(@X,Y), dc(@X,D).
d1 nextVm(@X,D,R) <- curVm(@X,D,R1), migVm(@X,Y,D,R2), R==R1-R2.
d2 nborNextVm(@X,Y,D,R) <- link(@Y,X), curVm(@Y,D,R1), migVm(@X,Y,D,R2), R==R1+R2.
d3 aggCommCost(@X,SUM<Cost>) <- nextVm(@X,D,R), commCost(@X,D,C), Cost==R*C.
d5 nborAggCommCost(@X,SUM<Cost>) <- link(@Y,X), commCost(@Y,D,C), nborNextVm(@X,Y,D,R), Cost==R*C.
d7 aggMigCost(@X,SUMABS<Cost>) <- migVm(@X,Y,D,R), migCost(@X,Y,C), Cost==R*C.
d8 aggCost(@X,C) <- aggCommCost(@X,C1), nborAggCommCost(@X,C2), aggMigCost(@X,C3), C==C1+C2+C3.
d9 aggNextVm(@X,SUM<R>) <- nextVm(@X,D,R).
c1 aggNextVm(@X,R1) -> resource(@X,R2), R1<=R2.
d10 aggNborNextVm(@X,Y,SUM<R>) <- nborNextVm(@X,Y,D,R).
c2 aggNborNextVm(@X,Y,R1) -> link(@Y,X), resource(@Y,R2), R1<=R2.
r2 migVm(@Y,X,D,R2) <- setLink(@X,Y), migVm(@X,Y,D,R1), R2:=-R1.
r3 curVm(@X,D,R) <- curVm(@X,D,R1), migVm(@X,Y,D,R2), R:=R1-R2.
`

func TestFollowTheSunTwoNodes(t *testing.T) {
	res := mustAnalyze(t, followSunTwoNode, nil)
	tr := transport.NewLoopback()
	cfg := Config{
		Keys:            map[string][]int{"curVm": {0, 1}},
		Events:          []string{"migVm"},
		SolverPropagate: true,
	}
	nx, err := NewNode("x", res, cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	ny, err := NewNode("y", res, cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	// Topology: one demand location "d", x currently hosts 4 VMs, y none.
	// Serving d from y is free, from x costs 10/VM; migration costs 1/VM.
	// Optimum: migrate all 4 VMs x->y... but resource caps y at 3.
	for _, n := range []*Node{nx, ny} {
		addr := n.Addr
		other := "y"
		if addr == "y" {
			other = "x"
		}
		n.Insert("link", sval(addr), sval(other))
		n.Insert("dc", sval(addr), sval("d"))
	}
	nx.Insert("curVm", sval("x"), sval("d"), ival(4))
	ny.Insert("curVm", sval("y"), sval("d"), ival(0))
	nx.Insert("commCost", sval("x"), sval("d"), ival(10))
	ny.Insert("commCost", sval("y"), sval("d"), ival(0))
	nx.Insert("migCost", sval("x"), sval("y"), ival(1))
	nx.Insert("resource", sval("x"), ival(10))
	ny.Insert("resource", sval("y"), ival(3))

	// x initiates negotiation over the (x,y) link.
	nx.Insert("setLink", sval("x"), sval("y"))
	sres, err := nx.Solve(SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sres.Status != solver.StatusOptimal {
		t.Fatalf("Status = %v", sres.Status)
	}
	// Expect migVm(x,y,d,3): cap at y's resource limit.
	if len(sres.Assignments) != 1 {
		t.Fatalf("assignments = %v", sres.Assignments)
	}
	mig := sres.Assignments[0].Vals[3].I
	if mig != 3 {
		t.Fatalf("migrated %d VMs, want 3 (y's capacity)", mig)
	}
	// r3 updated x's allocation; r2+r3 updated y's through the network.
	if !nx.Contains("curVm", sval("x"), sval("d"), ival(1)) {
		t.Fatalf("x curVm not updated:\n%s", nx.Dump())
	}
	if !ny.Contains("curVm", sval("y"), sval("d"), ival(3)) {
		t.Fatalf("y curVm not updated:\n%s", ny.Dump())
	}
}
