package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/colog"
	"repro/internal/transport"
)

// propSrc exercises joins, filters, definitional bindings, recursion and
// two aggregates at once.
const propSrc = `
r1 reach(X,Y) <- edge(X,Y).
r2 reach(X,Z) <- reach(X,Y), edge(Y,Z).
r3 deg(X,COUNT<Y>) <- edge(X,Y).
r4 heavy(X,W) <- edge(X,Y), weight(Y,V), W==V*2, V>3.
r5 tot(SUM<V>) <- weight(Y,V).
`

// TestIncrementalEqualsRecompute is the core IVM invariant: after an
// arbitrary interleaving of insertions and deletions, every table must
// equal the one produced by a fresh engine that only ever saw the surviving
// facts (with their surviving multiplicities).
func TestIncrementalEqualsRecompute(t *testing.T) {
	res := mustAnalyze(t, propSrc, nil)
	rng := rand.New(rand.NewSource(5))
	nodes := []string{"a", "b", "c", "d"}

	for trial := 0; trial < 60; trial++ {
		live, err := NewNode("x", res, Config{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[string]int{} // fact key -> net count
		type fact struct {
			pred string
			vals []colog.Value
		}
		facts := map[string]fact{}
		key := func(f fact) string { return f.pred + "/" + valsKey(f.vals) }
		randomFact := func() fact {
			if rng.Intn(2) == 0 {
				return fact{"edge", []colog.Value{
					sval(nodes[rng.Intn(len(nodes))]), sval(nodes[rng.Intn(len(nodes))]),
				}}
			}
			return fact{"weight", []colog.Value{
				sval(nodes[rng.Intn(len(nodes))]), ival(int64(rng.Intn(8))),
			}}
		}
		ops := 5 + rng.Intn(25)
		for i := 0; i < ops; i++ {
			f := randomFact()
			k := key(f)
			facts[k] = f
			if counts[k] > 0 && rng.Intn(3) == 0 {
				if err := live.Delete(f.pred, f.vals...); err != nil {
					t.Fatal(err)
				}
				counts[k]--
			} else {
				if err := live.Insert(f.pred, f.vals...); err != nil {
					t.Fatal(err)
				}
				counts[k]++
			}
		}
		// Fresh engine with only the surviving facts.
		fresh, err := NewNode("x", res, Config{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		for k, n := range counts {
			for i := 0; i < n; i++ {
				f := facts[k]
				if err := fresh.Insert(f.pred, f.vals...); err != nil {
					t.Fatal(err)
				}
			}
		}
		for _, table := range []string{"edge", "weight", "reach", "deg", "heavy", "tot"} {
			a, b := live.Rows(table), fresh.Rows(table)
			if len(a) != len(b) {
				t.Fatalf("trial %d: table %s differs: incremental %d rows, recomputed %d\nlive:\n%s\nfresh:\n%s",
					trial, table, len(a), len(b), live.Dump(), fresh.Dump())
			}
			for i := range a {
				if valsKey(a[i]) != valsKey(b[i]) {
					t.Fatalf("trial %d: table %s row %d differs: %v vs %v",
						trial, table, i, a[i], b[i])
				}
			}
		}
	}
}

// distSrc / centSrc are the same logic with and without location
// specifiers: the localization rewrite plus network shipping must be
// semantically transparent.
const distSrc = `
d0 out(@X,D,SUM<R>) <- link(@Y,X), store(@Y,D,R), want(@X,D).
`

const centSrc = `
d0 out(X,D,SUM<R>) <- link(Y,X), store(Y,D,R), want(X,D).
`

// TestDistributedEqualsCentralized feeds identical data to a simulated
// 3-node cluster and to a single centralized engine, and requires identical
// results — the paper's claim that the localization rewrite realizes the
// original rule semantics.
func TestDistributedEqualsCentralized(t *testing.T) {
	distRes := mustAnalyze(t, distSrc, nil)
	centRes := mustAnalyze(t, centSrc, nil)
	rng := rand.New(rand.NewSource(17))
	addrs := []string{"a", "b", "c"}
	demands := []string{"d1", "d2"}

	for trial := 0; trial < 40; trial++ {
		cluster, err := NewSimCluster(addrs, distRes, Config{}, time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		cent, err := NewNode("solo", centRes, Config{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		apply := func(pred string, vals ...colog.Value) {
			t.Helper()
			if err := cluster.Insert(pred, vals...); err != nil {
				t.Fatal(err)
			}
			if err := cent.Insert(pred, vals...); err != nil {
				t.Fatal(err)
			}
		}
		for _, from := range addrs {
			for _, to := range addrs {
				if from != to && rng.Intn(2) == 0 {
					apply("link", sval(from), sval(to))
				}
			}
		}
		for i := 0; i < 2+rng.Intn(6); i++ {
			apply("store", sval(addrs[rng.Intn(len(addrs))]),
				sval(demands[rng.Intn(len(demands))]), ival(int64(rng.Intn(9))))
		}
		for _, a := range addrs {
			if rng.Intn(2) == 0 {
				apply("want", sval(a), sval(demands[rng.Intn(len(demands))]))
			}
		}
		cluster.Settle()

		want := map[string]bool{}
		for _, row := range cent.Rows("out") {
			want[valsKey(row)] = true
		}
		got := map[string]bool{}
		for addr, rows := range cluster.Rows("out") {
			for _, row := range rows {
				if row[0].S != addr {
					t.Fatalf("trial %d: out row %v landed on wrong node %s", trial, row, addr)
				}
				got[valsKey(row)] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: distributed %d rows vs centralized %d\ncentral:\n%s",
				trial, len(got), len(want), cent.Dump())
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("trial %d: centralized row %s missing from distributed run", trial, k)
			}
		}
	}
}

// TestMessageLossDocumented: the transports provide no retransmission
// (UDP semantics, matching the paper's setup); a dropped delta leaves the
// receiver's view stale but the engine must stay consistent and usable.
func TestMessageLossKeepsEngineUsable(t *testing.T) {
	res := mustAnalyze(t, distSrc, nil)
	cluster, err := NewSimCluster([]string{"a", "b"}, res, Config{}, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	simTr := cluster.Transport().(interface{ DropEvery(int64) })
	simTr.DropEvery(1) // drop everything
	cluster.Insert("want", sval("a"), sval("d1"))
	cluster.Insert("link", sval("b"), sval("a"))
	cluster.Insert("store", sval("b"), sval("d1"), ival(5))
	cluster.Settle()
	if len(cluster.Node("a").Rows("out")) != 0 {
		t.Fatal("tuple arrived despite total message loss")
	}
	// After the loss stops, fresh deltas flow; lost ones are NOT
	// retransmitted (at-most-once delivery, like the paper's UDP setup), so
	// the receiver's aggregate reflects only the delivered tuple.
	simTr.DropEvery(0)
	cluster.Insert("store", sval("b"), sval("d1"), ival(3))
	cluster.Settle()
	if !cluster.Node("a").Contains("out", sval("a"), sval("d1"), ival(3)) {
		t.Fatalf("engine did not keep working after loss:\n%s", cluster.Node("a").Dump())
	}
}

// TestMalformedMessageIgnored: garbage datagrams must not corrupt a node.
func TestMalformedMessageIgnored(t *testing.T) {
	res := mustAnalyze(t, distSrc, nil)
	n, err := NewNode("x", res, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	n.handleMessage(transport.Message{From: "evil", To: "x", Payload: []byte("junk")})
	if n.LastError == nil {
		t.Fatal("malformed payload not reported")
	}
	// Node still functions.
	if err := n.Insert("want", sval("x"), sval("d1")); err != nil {
		t.Fatal(err)
	}
}
