package core

// Checkpointed recovery and anti-entropy resync.
//
// A node that crashes and rejoins must recover its view of remote decisions
// before it can participate in optimization again. Two cooperating
// mechanisms provide that (docs/recovery.md walks through the design):
//
//   - Table checkpoints: ExportCheckpoint serializes the node's entire
//     evaluation state — every table's rows *with their arrival-order seq
//     numbers*, the incremental aggregate views, the solver materialization
//     memory, and the replica mirrors below — into a versioned binary
//     snapshot built on the same varint wire primitives as the delta codec
//     (tuple.go). ImportCheckpoint (via RestoreNode) installs it verbatim:
//     because seq numbers survive, a restored node's join enumeration,
//     derivation order, and therefore its solver traces are byte-identical
//     to a node that never failed.
//
//   - Replica mirrors + digest resync: every non-event tuple a node ships
//     is recorded in a sent-side mirror (what I have asserted at that
//     peer), and every delivery in a receive-side mirror (what that peer
//     has asserted here). The two mirrors agree exactly when no message was
//     lost; a crash (in-flight datagrams dropped, state rolled back to the
//     last checkpoint) makes them diverge. StartResync runs a digest
//     exchange — per-table row count plus an order-sensitive hash — with
//     each peer and transfers only the rows needed to re-align the mirrors,
//     applying them through the normal delta pipeline so downstream
//     derivations re-fire.
//
// Resync frames chunk at the same per-frame budget as delta batches, so
// they fit single UDP datagrams at any table size.

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"repro/internal/colog"
)

// ----------------------------------------------------------- replica mirrors

// mirrorEntry is one row currently asserted across a link, with the
// multiplicity of its assertions (two derivations shipping the same tuple
// count twice, exactly as the destination table counts them).
type mirrorEntry struct {
	key   string
	hash  uint64
	vals  []colog.Value
	count int
}

// mirrorSet is an insertion-ordered multiset of rows. Entries whose count
// drops to zero stay as tombstones (preserving positions of the others)
// until a compaction; digests and diffs only see live entries.
type mirrorSet struct {
	entries []mirrorEntry
	index   map[string]int // live row key -> position in entries
	live    int
	dead    int
}

// note folds one shipped delta into the set.
func (m *mirrorSet) note(vals []colog.Value, sign int) {
	key := valsKey(vals)
	if idx, ok := m.index[key]; ok {
		e := &m.entries[idx]
		if sign > 0 {
			e.count++
		} else {
			e.count--
			if e.count <= 0 {
				delete(m.index, key)
				m.live--
				m.dead++
				m.maybeCompact()
			}
		}
		return
	}
	if sign < 0 {
		return // retracting a row never asserted: nothing to mirror
	}
	if m.index == nil {
		m.index = map[string]int{}
	}
	m.entries = append(m.entries, mirrorEntry{key: key, hash: fnvHash(key), vals: vals, count: 1})
	m.index[key] = len(m.entries) - 1
	m.live++
}

func (m *mirrorSet) maybeCompact() {
	if m.dead <= m.live+16 {
		return
	}
	kept := m.entries[:0]
	for _, e := range m.entries {
		if e.count > 0 {
			m.index[e.key] = len(kept)
			kept = append(kept, e)
		}
	}
	m.entries = kept
	m.dead = 0
}

// digest returns the live row count and the order-sensitive hash over the
// live entries (row hash and count folded in order).
func (m *mirrorSet) digest() (int, uint64) {
	h := uint64(fnvOffset)
	for _, e := range m.entries {
		if e.count <= 0 {
			continue
		}
		h = fnvFold64(h, e.hash)
		h = fnvFold64(h, uint64(e.count))
	}
	return m.live, h
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvHash(s string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

func fnvFold64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// ResyncStats counts the anti-entropy work a node performed as the
// *puller*: rows applied (inserts and deletes) while reconciling against
// peers' authoritative row lists, and the payload bytes of the resync rows
// frames that carried them.
type ResyncStats struct {
	RowsPulled  int64
	BytesPulled int64
}

// replica holds a node's mirrors and resync-protocol state. All fields are
// guarded by the owning Node's mu.
type replica struct {
	sent map[string]map[string]*mirrorSet // peer -> pred -> rows asserted there
	recv map[string]map[string]*mirrorSet // peer -> pred -> rows asserted here

	xid         uint64            // exchange-id allocator for pulls this node starts
	pending     map[string]uint64 // peer -> exchange id of the outstanding pull
	digSessions map[string]*digestSession
	rowSessions map[string]*rowsSession
	stats       ResyncStats
}

func (r *replica) init() {
	r.sent = map[string]map[string]*mirrorSet{}
	r.recv = map[string]map[string]*mirrorSet{}
	// Exchange ids must not repeat across process restarts, or a peer's
	// stale session from an abandoned pre-crash exchange could merge with
	// a new one's chunks; a wall-clock seed makes them unique per instance.
	// The value never influences evaluation or frame sizes (fixed 8-byte
	// encoding), so determinism guarantees are unaffected.
	r.xid = uint64(time.Now().UnixNano())
	r.pending = map[string]uint64{}
	r.digSessions = map[string]*digestSession{}
	r.rowSessions = map[string]*rowsSession{}
}

func mirrorOf(m map[string]map[string]*mirrorSet, peer, pred string, create bool) *mirrorSet {
	byPred := m[peer]
	if byPred == nil {
		if !create {
			return nil
		}
		byPred = map[string]*mirrorSet{}
		m[peer] = byPred
	}
	ms := byPred[pred]
	if ms == nil && create {
		ms = &mirrorSet{}
		byPred[pred] = ms
	}
	return ms
}

func (r *replica) noteSent(peer, pred string, vals []colog.Value, sign int) {
	mirrorOf(r.sent, peer, pred, true).note(vals, sign)
}

func (r *replica) noteRecv(peer, pred string, vals []colog.Value, sign int) {
	mirrorOf(r.recv, peer, pred, true).note(vals, sign)
}

// ------------------------------------------------------------- wire framing

// Digest frame (wireResyncDigestVersion): [ver][mode][8-byte exchange id]
// [4-byte chunk index][4-byte chunk total][count byte nTables] then per
// table chunk: name, uvarint liveCount, 8-byte order hash, uvarint
// nHashes, nHashes x 8-byte row hashes. mode 1 asks the responder to also
// start its own pull back toward the requester (the bidirectional exchange
// a restart runs); mode 0 is a plain pull.
//
// Rows frame (wireResyncRowsVersion): [ver][8-byte exchange id][4-byte
// chunk index][4-byte chunk total][count byte nTables] then per table
// chunk: name, uvarint nEntries, per entry a flag byte — 0 (ref): the
// requester already holds the row, 8-byte row hash + uvarint count; 1
// (full): uvarint count + encoded values. The per-table entry list is the
// responder's authoritative assertion state *in mirror order*, so the
// requester can rebuild its receive-side mirror positionally.
//
// Large tables split across chunks (and frames) at maxBatchFrameBytes; the
// receiver accumulates chunks in a per-(peer, exchange) session and only
// processes a message once every chunk of the exchange has arrived —
// chunks may reorder over UDP, and a dropped chunk must never let a
// partial row list masquerade as the complete authoritative state (the
// exchange then simply never completes, which the restart path surfaces).
// The exchange id — unique per node instance, fresh per StartResync, and
// echoed by the responder — keeps a retried exchange from merging with
// chunks of an earlier abandoned one.

const (
	resyncModePull = 0
	resyncModeBidi = 1
)

type digestTable struct {
	name      string
	count     uint64
	orderHash uint64
	hashes    []uint64
}

// digestSession accumulates one exchange's digest chunks until all have
// arrived (chunks may reorder in flight; they are assembled in index
// order).
type digestSession struct {
	mode   byte
	xid    uint64
	total  uint32
	chunks map[uint32][]*digestTable
}

type rowsEntry struct {
	full  bool
	hash  uint64
	count uint64
	vals  []colog.Value
}

type rowsTable struct {
	name    string
	entries []rowsEntry
}

// rowsSession accumulates one exchange's rows chunks until all have
// arrived.
type rowsSession struct {
	xid    uint64
	total  uint32
	chunks map[uint32][]*rowsTable
}

// frameWriter packs chunked sections into frames bounded by
// maxBatchFrameBytes. Each frame restates the section header (the table
// name) so chunks are self-describing, and carries its chunk index; the
// chunk total is patched into every frame when the writer finishes, so a
// receiver can tell a complete exchange from one with frames still in
// flight (or lost). prefix holds the version and mode bytes, suffix the
// 8-byte exchange id.
type frameWriter struct {
	prefix  []byte
	suffix  []byte
	frames  [][]byte
	cur     []byte
	tables  int
	idxFix  int // offset of the current frame's chunk index / total fields
	tposFix int // offset of the current frame's table count byte
}

func newFrameWriter(prefix, suffix []byte) *frameWriter {
	return &frameWriter{prefix: prefix, suffix: suffix}
}

func (w *frameWriter) open() {
	if w.cur != nil {
		return
	}
	w.cur = append([]byte(nil), w.prefix...)
	w.cur = append(w.cur, w.suffix...)
	w.idxFix = len(w.cur)
	w.cur = binary.LittleEndian.AppendUint32(w.cur, uint32(len(w.frames))) // chunk index
	w.cur = binary.LittleEndian.AppendUint32(w.cur, 0)                     // chunk total, patched on finish
	w.tposFix = len(w.cur)
	w.cur = append(w.cur, 0) // table count placeholder (patched; <= 255 kept small by chunking)
	w.tables = 0
}

// add appends one table chunk (already encoded, sans name) under name,
// closing the frame first if the chunk would not fit.
func (w *frameWriter) add(name string, chunk []byte) {
	need := binary.MaxVarintLen64 + len(name) + len(chunk)
	if w.cur != nil && len(w.cur)+need > maxBatchFrameBytes && w.tables > 0 {
		w.closeFrame()
	}
	w.open()
	w.cur = appendWireString(w.cur, name)
	w.cur = append(w.cur, chunk...)
	w.tables++
	if w.tables == 255 { // table count is a single byte; chunk generously below it
		w.closeFrame()
	}
}

func (w *frameWriter) closeFrame() {
	if w.cur == nil {
		return
	}
	w.cur[w.tposFix] = byte(w.tables)
	w.frames = append(w.frames, w.cur)
	w.cur = nil
}

// finish closes the last frame, patches the chunk total into every frame,
// and returns them. With no content, a single empty frame is returned (the
// ack that completes the requester's exchange).
func (w *frameWriter) finish() [][]byte {
	w.open()
	w.closeFrame()
	for _, f := range w.frames {
		binary.LittleEndian.PutUint32(f[w.idxFix+4:], uint32(len(w.frames)))
	}
	return w.frames
}

// chunkLimit bounds the elements encoded into one table chunk so a chunk
// always fits a frame with room to spare.
const chunkLimit = 4096

// ------------------------------------------------------------- requester side

// StartResync initiates an anti-entropy exchange with each peer: the node
// sends a digest of everything it believes each peer has asserted here, and
// the peers respond with the rows needed to re-align. The exchange is
// bidirectional — each peer also pulls this node's assertion state back, so
// a peer holding rows from this node's lost "future" (sent after the
// checkpoint being restored) rolls them back. Completion is asynchronous:
// ResyncPending reports how many peer responses are outstanding.
func (n *Node) StartResync(peers []string) error {
	if n.tr == nil {
		return fmt.Errorf("core: resync: node %s has no transport", n.Addr)
	}
	type out struct {
		peer   string
		frames [][]byte
	}
	var outs []out
	n.mu.Lock()
	for _, peer := range peers {
		if peer == n.Addr {
			continue
		}
		n.repl.xid++
		n.repl.pending[peer] = n.repl.xid
		delete(n.repl.rowSessions, peer) // chunks of an abandoned exchange
		outs = append(outs, out{peer, n.buildDigestFramesLocked(peer, resyncModeBidi, n.repl.xid)})
	}
	n.mu.Unlock()
	var firstErr error
	for _, o := range outs {
		for _, f := range o.frames {
			if err := n.tr.Send(n.Addr, o.peer, f); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// ResyncPending reports how many peers have not yet answered this node's
// resync digests.
func (n *Node) ResyncPending() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.repl.pending)
}

// ResyncStats returns the node's cumulative anti-entropy pull counters.
func (n *Node) ResyncStats() ResyncStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.repl.stats
}

// buildDigestFramesLocked encodes the receive-side mirror for peer into
// digest frames. Caller holds n.mu.
func (n *Node) buildDigestFramesLocked(peer string, mode byte, xid uint64) [][]byte {
	w := newFrameWriter([]byte{wireResyncDigestVersion, mode}, binary.LittleEndian.AppendUint64(nil, xid))
	byPred := n.repl.recv[peer]
	for _, pred := range sortedMirrorPreds(byPred) {
		ms := byPred[pred]
		count, orderHash := ms.digest()
		first := true
		emit := func(hashes []uint64) {
			chunk := binary.AppendUvarint(nil, uint64(count))
			chunk = binary.LittleEndian.AppendUint64(chunk, orderHash)
			chunk = binary.AppendUvarint(chunk, uint64(len(hashes)))
			for _, h := range hashes {
				chunk = binary.LittleEndian.AppendUint64(chunk, h)
			}
			w.add(pred, chunk)
			first = false
		}
		var hashes []uint64
		for _, e := range ms.entries {
			if e.count <= 0 {
				continue
			}
			hashes = append(hashes, e.hash)
			if len(hashes) == chunkLimit {
				emit(hashes)
				hashes = nil
			}
		}
		if len(hashes) > 0 || first {
			emit(hashes)
		}
	}
	return w.finish()
}

func sortedMirrorPreds(m map[string]*mirrorSet) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ------------------------------------------------------------- responder side

// handleResyncDigest accumulates a peer's digest chunks and, once the
// exchange is complete, answers with the rows frames that re-align the
// peer, sending only full values for rows the digest shows the peer is
// missing. In bidirectional mode it then starts its own pull back toward
// the peer.
func (n *Node) handleResyncDigest(from string, payload []byte) error {
	mode, xid, idx, total, tables, err := decodeDigestFrame(payload)
	if err != nil {
		return err
	}
	n.mu.Lock()
	sess := n.repl.digSessions[from]
	if sess != nil && xid < sess.xid {
		// A delayed chunk of an older, abandoned exchange: discard it
		// rather than clobber the in-progress one. Exchange ids are
		// strictly increasing per requester instance and time-seeded across
		// restarts, so newer exchanges always carry larger ids.
		n.mu.Unlock()
		return nil
	}
	if sess != nil && xid > sess.xid {
		sess = nil // a fresh exchange supersedes the abandoned one
	}
	if sess == nil {
		sess = &digestSession{mode: mode, xid: xid, total: total, chunks: map[uint32][]*digestTable{}}
		n.repl.digSessions[from] = sess
	}
	sess.chunks[idx] = tables
	if len(sess.chunks) < int(sess.total) {
		n.mu.Unlock()
		return nil // chunks still in flight
	}
	delete(n.repl.digSessions, from)
	// Assemble the chunks in index order, merging per-table hash lists.
	order, byName := mergeDigestChunks(sess)
	frames := n.buildRowsFramesLocked(from, xid, order, byName)
	var reverse [][]byte
	if sess.mode == resyncModeBidi {
		n.repl.xid++
		n.repl.pending[from] = n.repl.xid
		delete(n.repl.rowSessions, from) // chunks of an abandoned exchange
		reverse = n.buildDigestFramesLocked(from, resyncModePull, n.repl.xid)
	}
	n.mu.Unlock()

	var firstErr error
	for _, f := range frames {
		if err := n.tr.Send(n.Addr, from, f); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, f := range reverse {
		if err := n.tr.Send(n.Addr, from, f); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// mergeDigestChunks assembles a completed digest session's chunks in index
// order into per-table digests (hash lists concatenate across chunks).
func mergeDigestChunks(sess *digestSession) ([]string, map[string]*digestTable) {
	idxs := make([]int, 0, len(sess.chunks))
	for idx := range sess.chunks {
		idxs = append(idxs, int(idx))
	}
	sort.Ints(idxs)
	var order []string
	byName := map[string]*digestTable{}
	for _, idx := range idxs {
		for _, t := range sess.chunks[uint32(idx)] {
			cur := byName[t.name]
			if cur == nil {
				byName[t.name] = t
				order = append(order, t.name)
			} else {
				cur.hashes = append(cur.hashes, t.hashes...)
			}
		}
	}
	return order, byName
}

// buildRowsFramesLocked encodes this node's authoritative assertion state
// at peer for every table whose digest mismatched (and every asserted table
// the digest omitted). Caller holds n.mu.
func (n *Node) buildRowsFramesLocked(peer string, xid uint64, reqOrder []string, reqTables map[string]*digestTable) [][]byte {
	byPred := n.repl.sent[peer]
	// Union of the digested tables and the locally asserted tables, digest
	// order first so the requester reconciles in a deterministic order.
	var order []string
	seen := map[string]bool{}
	for _, name := range reqOrder {
		order = append(order, name)
		seen[name] = true
	}
	for _, name := range sortedMirrorPreds(byPred) {
		if !seen[name] {
			order = append(order, name)
		}
	}
	w := newFrameWriter([]byte{wireResyncRowsVersion}, binary.LittleEndian.AppendUint64(nil, xid))
	for _, pred := range order {
		var ms mirrorSet
		if s := byPred[pred]; s != nil {
			ms = *s
		}
		req := reqTables[pred]
		count, orderHash := ms.digest()
		if req != nil && int(req.count) == count && req.orderHash == orderHash {
			continue // aligned: not in the response, requester keeps it
		}
		reqHashes := map[uint64]bool{}
		if req != nil {
			for _, h := range req.hashes {
				reqHashes[h] = true
			}
		}
		var chunk []byte
		entries := 0
		emit := func() {
			buf := binary.AppendUvarint(nil, uint64(entries))
			buf = append(buf, chunk...)
			w.add(pred, buf)
			chunk = chunk[:0]
			entries = 0
		}
		wrote := false
		for _, e := range ms.entries {
			if e.count <= 0 {
				continue
			}
			if reqHashes[e.hash] {
				chunk = append(chunk, 0)
				chunk = binary.LittleEndian.AppendUint64(chunk, e.hash)
				chunk = binary.AppendUvarint(chunk, uint64(e.count))
			} else {
				chunk = append(chunk, 1)
				chunk = binary.AppendUvarint(chunk, uint64(e.count))
				chunk, _ = appendWireVals(chunk, e.vals)
			}
			entries++
			if entries == chunkLimit || len(chunk) >= maxBatchFrameBytes/2 {
				emit()
				wrote = true
			}
		}
		if entries > 0 || !wrote {
			emit() // an empty table chunk tells the requester to clear it
		}
	}
	return w.finish()
}

// ------------------------------------------------------- reconciliation side

// handleResyncRows accumulates a peer's rows chunks and, once the exchange
// is complete, reconciles: for each table in the response the peer's entry
// list is the authoritative state, so rows this node is missing are
// inserted, rows the peer no longer asserts are deleted, multiplicity
// differences are adjusted, and the receive-side mirror is rebuilt in the
// peer's order. Inserts and deletes flow through the normal update
// pipeline, re-firing downstream derivations exactly as live deliveries
// would. The exchange stays pending until the whole plan is applied, so a
// caller polling ResyncPending never observes completion mid-apply.
func (n *Node) handleResyncRows(from string, payload []byte) error {
	xid, idx, total, tables, err := decodeRowsFrame(payload)
	if err != nil {
		return err
	}
	n.mu.Lock()
	if n.repl.pending[from] != xid {
		// A response to an exchange this node no longer waits for.
		n.mu.Unlock()
		return nil
	}
	n.repl.stats.BytesPulled += int64(len(payload))
	sess := n.repl.rowSessions[from]
	if sess != nil && sess.xid != xid {
		sess = nil
	}
	if sess == nil {
		sess = &rowsSession{xid: xid, total: total, chunks: map[uint32][]*rowsTable{}}
		n.repl.rowSessions[from] = sess
	}
	sess.chunks[idx] = tables
	if len(sess.chunks) < int(sess.total) {
		n.mu.Unlock()
		return nil // chunks still in flight
	}
	delete(n.repl.rowSessions, from)
	// Assemble the chunks in index order, merging per-table entry lists.
	idxs := make([]int, 0, len(sess.chunks))
	for i := range sess.chunks {
		idxs = append(idxs, int(i))
	}
	sort.Ints(idxs)
	var tableOrder []string
	byName := map[string]*rowsTable{}
	for _, i := range idxs {
		for _, t := range sess.chunks[uint32(i)] {
			cur := byName[t.name]
			if cur == nil {
				byName[t.name] = t
				tableOrder = append(tableOrder, t.name)
			} else {
				cur.entries = append(cur.entries, t.entries...)
			}
		}
	}

	// Resolve the authoritative lists into concrete rows and compute the
	// update plan under the lock; apply it after releasing (updateFrom
	// re-locks per row, and applying can trigger sends).
	var plan []resyncOp
	var recTables []resyncMirror
	var firstErr error
	for _, name := range tableOrder {
		t := byName[name]
		cur := mirrorOf(n.repl.recv, from, name, true)
		byHash := map[uint64]*mirrorEntry{}
		oldCount := map[string]int{}
		for i := range cur.entries {
			e := &cur.entries[i]
			if e.count <= 0 {
				continue
			}
			byHash[e.hash] = e
			oldCount[e.key] = e.count
		}
		next := &mirrorSet{index: map[string]int{}}
		newCount := map[string]int{}
		bad := false
		for _, re := range t.entries {
			var vals []colog.Value
			if re.full {
				vals = re.vals
			} else {
				e := byHash[re.hash]
				if e == nil {
					// The peer referenced a row this node never listed —
					// protocol drift; skip the table rather than corrupt it.
					bad = true
					break
				}
				vals = e.vals
			}
			key := valsKey(vals)
			if _, dup := next.index[key]; dup {
				bad = true
				break
			}
			next.entries = append(next.entries, mirrorEntry{key: key, hash: fnvHash(key), vals: vals, count: int(re.count)})
			next.index[key] = len(next.entries) - 1
			next.live++
			newCount[key] = int(re.count)
		}
		if bad {
			if firstErr == nil {
				firstErr = fmt.Errorf("core: resync from %s: unresolvable row reference in %s", from, name)
			}
			continue
		}
		// Inserts and count increases first (a keyed replacement consumes
		// the stale row it supersedes), then deletions of rows the peer no
		// longer asserts.
		for _, e := range next.entries {
			if d := e.count - oldCount[e.key]; d > 0 {
				plan = append(plan, resyncOp{name, e.vals, +1, d})
			}
		}
		for i := range cur.entries {
			e := &cur.entries[i]
			if e.count <= 0 {
				continue
			}
			if d := e.count - newCount[e.key]; d > 0 {
				plan = append(plan, resyncOp{name, e.vals, -1, d})
			}
		}
		n.repl.recv[from][name] = next
		recTables = append(recTables, resyncMirror{name: name, entries: next.entries})
	}
	// Log the whole exchange — mirror installs plus the update plan — as
	// one atomic record before applying. Logging the mirror without the
	// plan's effects (or vice versa) would leave a replayed node believing
	// the peer asserted rows its tables never received: the digests would
	// match and the divergence would never heal. One record means a torn
	// write drops both, and the stale mirror triggers a fresh pull.
	if len(recTables)+len(plan) > 0 {
		n.walResync(from, recTables, plan)
	}
	n.mu.Unlock()

	var applied int64
	for _, o := range plan {
		for i := 0; i < o.times; i++ {
			// Origin is empty: the mirror has already been rebuilt above.
			// The ops are covered by the resync record; do not log them
			// individually.
			if err := n.updateFromLogged(o.pred, o.vals, o.sign, "", false); err != nil && firstErr == nil {
				firstErr = err
			}
			applied++
		}
	}
	// Only now is the exchange complete from the caller's point of view.
	n.mu.Lock()
	n.repl.stats.RowsPulled += applied
	if n.repl.pending[from] == xid {
		delete(n.repl.pending, from)
	}
	n.mu.Unlock()
	return firstErr
}

// ------------------------------------------------------------ frame decoding

func decodeDigestFrame(payload []byte) (mode byte, xid uint64, idx, total uint32, tables []*digestTable, err error) {
	fail := func(what string) (byte, uint64, uint32, uint32, []*digestTable, error) {
		return 0, 0, 0, 0, nil, fmt.Errorf("core: decoding resync digest: malformed %s", what)
	}
	if len(payload) < 19 || payload[0] != wireResyncDigestVersion {
		return fail("header")
	}
	mode = payload[1]
	xid = binary.LittleEndian.Uint64(payload[2:])
	idx = binary.LittleEndian.Uint32(payload[10:])
	total = binary.LittleEndian.Uint32(payload[14:])
	if total == 0 || idx >= total {
		return fail("chunk index")
	}
	nTables := int(payload[18])
	rest := payload[19:]
	for i := 0; i < nTables; i++ {
		name, r, ok := readWireString(rest)
		if !ok {
			return fail("table name")
		}
		rest = r
		count, w := binary.Uvarint(rest)
		if w <= 0 {
			return fail("row count")
		}
		rest = rest[w:]
		if len(rest) < 8 {
			return fail("order hash")
		}
		orderHash := binary.LittleEndian.Uint64(rest)
		rest = rest[8:]
		nHashes, w := binary.Uvarint(rest)
		if w <= 0 || nHashes > uint64(len(rest)) {
			return fail("hash count")
		}
		rest = rest[w:]
		if uint64(len(rest)) < 8*nHashes {
			return fail("row hashes")
		}
		t := &digestTable{name: name, count: count, orderHash: orderHash}
		for j := uint64(0); j < nHashes; j++ {
			t.hashes = append(t.hashes, binary.LittleEndian.Uint64(rest))
			rest = rest[8:]
		}
		tables = append(tables, t)
	}
	if len(rest) != 0 {
		return fail("trailer")
	}
	return mode, xid, idx, total, tables, nil
}

func decodeRowsFrame(payload []byte) (xid uint64, idx, total uint32, tables []*rowsTable, err error) {
	fail := func(what string) (uint64, uint32, uint32, []*rowsTable, error) {
		return 0, 0, 0, nil, fmt.Errorf("core: decoding resync rows: malformed %s", what)
	}
	if len(payload) < 18 || payload[0] != wireResyncRowsVersion {
		return fail("header")
	}
	xid = binary.LittleEndian.Uint64(payload[1:])
	idx = binary.LittleEndian.Uint32(payload[9:])
	total = binary.LittleEndian.Uint32(payload[13:])
	if total == 0 || idx >= total {
		return fail("chunk index")
	}
	nTables := int(payload[17])
	rest := payload[18:]
	for i := 0; i < nTables; i++ {
		name, r, ok := readWireString(rest)
		if !ok {
			return fail("table name")
		}
		rest = r
		nEntries, w := binary.Uvarint(rest)
		if w <= 0 || nEntries > uint64(len(rest))+1 {
			return fail("entry count")
		}
		rest = rest[w:]
		t := &rowsTable{name: name}
		for j := uint64(0); j < nEntries; j++ {
			if len(rest) == 0 {
				return fail("entry flag")
			}
			flag := rest[0]
			rest = rest[1:]
			switch flag {
			case 0:
				if len(rest) < 8 {
					return fail("row hash")
				}
				h := binary.LittleEndian.Uint64(rest)
				rest = rest[8:]
				count, w := binary.Uvarint(rest)
				if w <= 0 || count == 0 {
					return fail("ref count")
				}
				rest = rest[w:]
				t.entries = append(t.entries, rowsEntry{hash: h, count: count})
			case 1:
				count, w := binary.Uvarint(rest)
				if w <= 0 || count == 0 {
					return fail("row count")
				}
				rest = rest[w:]
				vals, r, err := readWireVals(rest)
				if err != nil {
					return fail("row values")
				}
				rest = r
				t.entries = append(t.entries, rowsEntry{full: true, count: count, vals: vals})
			default:
				return fail("entry flag")
			}
		}
		tables = append(tables, t)
	}
	if len(rest) != 0 {
		return fail("trailer")
	}
	return xid, idx, total, tables, nil
}
