package core

import (
	"testing"
)

// TestCyclicReachabilityDeletion is the canonical counting-breaks case:
// a two-node cycle whose reach tuples support each other. Deleting one edge
// must retract everything that is no longer derivable.
func TestCyclicReachabilityDeletion(t *testing.T) {
	n := newTestNode(t, `
r1 reach(X,Y) <- edge(X,Y).
r2 reach(X,Z) <- reach(X,Y), edge(Y,Z).
`, Config{})
	n.Insert("edge", sval("a"), sval("b"))
	n.Insert("edge", sval("b"), sval("a"))
	for _, w := range [][2]string{{"a", "b"}, {"b", "a"}, {"a", "a"}, {"b", "b"}} {
		if !n.Contains("reach", sval(w[0]), sval(w[1])) {
			t.Fatalf("setup: reach(%s,%s) missing", w[0], w[1])
		}
	}
	n.Delete("edge", sval("b"), sval("a"))
	// Only a->b remains derivable.
	if !n.Contains("reach", sval("a"), sval("b")) {
		t.Fatalf("reach(a,b) wrongly retracted:\n%s", n.Dump())
	}
	for _, w := range [][2]string{{"b", "a"}, {"a", "a"}, {"b", "b"}} {
		if n.Contains("reach", sval(w[0]), sval(w[1])) {
			t.Fatalf("reach(%s,%s) survived cycle deletion:\n%s", w[0], w[1], n.Dump())
		}
	}
	// Re-inserting restores the full closure.
	n.Insert("edge", sval("b"), sval("a"))
	if rows(n, "reach") != 4 {
		t.Fatalf("reach has %d rows after re-insert, want 4:\n%s", rows(n, "reach"), n.Dump())
	}
}

// TestCycleDeletionWithBaseFacts: externally inserted tuples of a recursive
// predicate must survive recompute (they are base facts, not derivations).
func TestCycleDeletionWithBaseFacts(t *testing.T) {
	n := newTestNode(t, `
r1 reach(X,Y) <- edge(X,Y).
r2 reach(X,Z) <- reach(X,Y), edge(Y,Z).
`, Config{})
	// reach(ext1,ext2) asserted directly, not derivable from any edge.
	n.Insert("reach", sval("ext1"), sval("ext2"))
	n.Insert("edge", sval("a"), sval("b"))
	n.Insert("edge", sval("b"), sval("a"))
	n.Delete("edge", sval("b"), sval("a"))
	if !n.Contains("reach", sval("ext1"), sval("ext2")) {
		t.Fatalf("base fact lost by recompute:\n%s", n.Dump())
	}
	if !n.Contains("reach", sval("a"), sval("b")) {
		t.Fatal("derivable tuple lost")
	}
	if n.Contains("reach", sval("b"), sval("b")) {
		t.Fatal("cyclic tuple survived")
	}
}

// TestDownstreamOfRecursiveGroup: consumers of a recursive predicate see
// the recompute diff as ordinary deltas, including aggregates.
func TestDownstreamOfRecursiveGroup(t *testing.T) {
	n := newTestNode(t, `
r1 reach(X,Y) <- edge(X,Y).
r2 reach(X,Z) <- reach(X,Y), edge(Y,Z).
r3 fanout(X,COUNT<Y>) <- reach(X,Y).
`, Config{})
	n.Insert("edge", sval("a"), sval("b"))
	n.Insert("edge", sval("b"), sval("c"))
	n.Insert("edge", sval("c"), sval("a"))
	if !n.Contains("fanout", sval("a"), ival(3)) {
		t.Fatalf("setup fanout wrong:\n%s", n.Dump())
	}
	n.Delete("edge", sval("c"), sval("a"))
	if !n.Contains("fanout", sval("a"), ival(2)) {
		t.Fatalf("aggregate not maintained through recompute:\n%s", n.Dump())
	}
	if n.Contains("fanout", sval("c"), ival(3)) {
		t.Fatalf("stale aggregate row:\n%s", n.Dump())
	}
}

// TestEventJoinedRuleNotTreatedAsRecursive: the Follow-the-Sun r3 idiom —
// a keyed table updated by joining itself with an event — must not trigger
// recursive recompute (the event is transient, so the update is base
// state).
func TestEventJoinedRuleNotTreatedAsRecursive(t *testing.T) {
	n := newTestNode(t, `
r1 state(K,R) <- state(K,R1), bump(K,D), R:=R1+D.
`, Config{Keys: map[string][]int{"state": {0}}, Events: []string{"bump"}})
	if len(n.groups) != 0 {
		t.Fatalf("event-joined self-update treated as recursive group: %v", n.groups)
	}
	n.Insert("state", sval("k"), ival(10))
	n.Insert("bump", sval("k"), ival(5))
	if !n.Contains("state", sval("k"), ival(15)) {
		t.Fatalf("state update broken:\n%s", n.Dump())
	}
	n.Insert("bump", sval("k"), ival(-3))
	if !n.Contains("state", sval("k"), ival(12)) {
		t.Fatalf("second update broken:\n%s", n.Dump())
	}
}

// TestDistributedRecursionFallsBackToCounting: a recursive rule whose head
// ships to another node cannot be recomputed locally and keeps counting
// semantics (no recompute support).
func TestDistributedRecursionFallsBackToCounting(t *testing.T) {
	n := newTestNode(t, `
r1 known(@X,D) <- origin(@X,D).
r2 known(@Y,D) <- known(@X,D), link(@X,Y).
`, Config{})
	if len(n.groups) == 0 {
		t.Fatal("gossip recursion not detected as a group")
	}
	for _, g := range n.groups {
		if g.local {
			t.Fatalf("cross-node recursive group registered as local: %+v", g)
		}
	}
	if len(n.groupOfHead) != 0 {
		t.Fatal("distributed recursion wired into DRed")
	}
}

// TestLocalizedRecursionStillDRed: recursion over tuples shipped in from
// other nodes is local after the localization rewrite, so recompute applies
// (shipped tuples are base facts at the receiver).
func TestLocalizedRecursionStillDRed(t *testing.T) {
	n := newTestNode(t, `
r1 path(@X,Y) <- edge(@X,Y).
r2 path(@X,Z) <- path(@X,Y), edge2(@Y,X,Z).
`, Config{})
	found := false
	for _, g := range n.groups {
		if g.preds["path"] && g.local {
			found = true
		}
	}
	if !found {
		t.Fatalf("localized recursion not registered for recompute: %+v", n.groups)
	}
}
