package colog

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// genProgram builds a random but well-formed Colog program.
func genProgram(rng *rand.Rand) string {
	var b strings.Builder
	preds := []string{"alpha", "beta", "gamma", "delta"}
	vars := []string{"X", "Y", "Z", "W"}
	aggs := []string{"SUM", "MIN", "MAX", "COUNT", "STDEV", "SUMABS", "UNIQUE", "AVG"}

	atom := func(pred string, arity int, loc bool) string {
		args := make([]string, arity)
		for i := range args {
			switch rng.Intn(4) {
			case 0:
				args[i] = fmt.Sprintf("%d", rng.Intn(100)-50)
			case 1:
				args[i] = fmt.Sprintf("%q", string(rune('a'+rng.Intn(26))))
			default:
				args[i] = vars[rng.Intn(len(vars))]
			}
		}
		if loc && arity > 0 {
			args[0] = "@" + vars[rng.Intn(len(vars))]
		}
		return fmt.Sprintf("%s(%s)", pred, strings.Join(args, ","))
	}

	nRules := 1 + rng.Intn(5)
	for r := 0; r < nRules; r++ {
		// Head: keep safety by reusing only X and Y which always appear in
		// the first body atom.
		headArity := 1 + rng.Intn(2)
		head := fmt.Sprintf("%s(%s)", preds[rng.Intn(2)], strings.Join(vars[:headArity], ","))
		if rng.Intn(4) == 0 {
			head = fmt.Sprintf("%s(%s,%s<%s>)", preds[rng.Intn(2)], vars[0],
				aggs[rng.Intn(len(aggs))], vars[1])
		}
		body := []string{fmt.Sprintf("%s(%s,%s)", preds[2+rng.Intn(2)], vars[0], vars[1])}
		for extra := rng.Intn(3); extra > 0; extra-- {
			body = append(body, atom(preds[rng.Intn(len(preds))], 1+rng.Intn(3), false))
		}
		if rng.Intn(2) == 0 {
			ops := []string{"==", "!=", "<", "<=", ">", ">="}
			body = append(body, fmt.Sprintf("%s%s%d", vars[rng.Intn(2)],
				ops[rng.Intn(len(ops))], rng.Intn(20)))
		}
		if rng.Intn(3) == 0 {
			body = append(body, fmt.Sprintf("W:=%s*%d+|%s|", vars[0], rng.Intn(5), vars[1]))
		}
		fmt.Fprintf(&b, "r%d %s <- %s.\n", r, head, strings.Join(body, ", "))
	}
	for f := rng.Intn(4); f > 0; f-- {
		fmt.Fprintf(&b, "%s(%d,%q).\n", preds[2+rng.Intn(2)], rng.Intn(50), "c")
	}
	return b.String()
}

// TestRandomProgramRoundTrip: parse(print(parse(src))) must be stable for
// randomly generated programs — the printer emits valid Colog and the
// parser is deterministic.
func TestRandomProgramRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		src := genProgram(rng)
		p1, err := Parse(src)
		if err != nil {
			t.Fatalf("trial %d: generated program does not parse: %v\n%s", trial, err, src)
		}
		printed := p1.String()
		p2, err := Parse(printed)
		if err != nil {
			t.Fatalf("trial %d: printed program does not parse: %v\n%s", trial, err, printed)
		}
		if p2.String() != printed {
			t.Fatalf("trial %d: round trip unstable:\n%s\nvs\n%s", trial, printed, p2.String())
		}
	}
}
