package colog

import (
	"strings"
	"testing"
)

// The ACloud program exactly as printed in section 4.2 of the paper.
const acloudSrc = `
goal minimize C in hostStdevCpu(C).
var assign(Vid,Hid,V) forall toAssign(Vid,Hid).

r1 toAssign(Vid,Hid) <- vm(Vid,Cpu,Mem),
    host(Hid,Cpu2,Mem2).
d1 hostCpu(Hid,SUM<C>) <- assign(Vid,Hid,V),
    vm(Vid,Cpu,Mem), C==V*Cpu.
d2 hostStdevCpu(STDEV<C>) <- host(Hid,Cpu,Mem),
    hostCpu(Hid,Cpu2), C==Cpu+Cpu2.
d3 assignCount(Vid,SUM<V>) <- assign(Vid,Hid,V).
c1 assignCount(Vid,V) -> V==1.
d4 hostMem(Hid,SUM<M>) <- assign(Vid,Hid,V),
    vm(Vid,Cpu,Mem), M==V*Mem.
c2 hostMem(Hid,Mem) -> hostMemThres(Hid,M), Mem<=M.
`

func TestParseACloud(t *testing.T) {
	prog, err := Parse(acloudSrc)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Goal == nil || prog.Goal.Sense != GoalMinimize || prog.Goal.VarName != "C" {
		t.Fatalf("goal parsed wrong: %v", prog.Goal)
	}
	if prog.Goal.Atom.Pred != "hostStdevCpu" {
		t.Fatalf("goal atom = %s", prog.Goal.Atom.Pred)
	}
	if len(prog.Vars) != 1 {
		t.Fatalf("got %d var decls, want 1", len(prog.Vars))
	}
	vd := prog.Vars[0]
	if vd.Decl.Pred != "assign" || vd.ForAll.Pred != "toAssign" {
		t.Fatalf("var decl parsed wrong: %v", vd)
	}
	if len(prog.Rules) != 7 {
		t.Fatalf("got %d rules, want 7", len(prog.Rules))
	}
	wantLabels := []string{"r1", "d1", "d2", "d3", "c1", "d4", "c2"}
	for i, r := range prog.Rules {
		if r.Label != wantLabels[i] {
			t.Errorf("rule %d label = %q, want %q", i, r.Label, wantLabels[i])
		}
	}
	if prog.Rules[4].Kind != KindConstraint || prog.Rules[6].Kind != KindConstraint {
		t.Error("c1/c2 not parsed as constraint rules")
	}
	if prog.Rules[1].Kind != KindDerivation {
		t.Error("d1 not parsed as derivation rule")
	}
	// d1's head aggregate.
	agg, ok := prog.Rules[1].Head.Args[1].(*AggTerm)
	if !ok || agg.Func != AggSum || agg.Over != "C" {
		t.Fatalf("d1 head aggregate = %v", prog.Rules[1].Head.Args[1])
	}
	// d2's STDEV aggregate.
	agg2, ok := prog.Rules[2].Head.Args[0].(*AggTerm)
	if !ok || agg2.Func != AggStdev {
		t.Fatalf("d2 head aggregate = %v", prog.Rules[2].Head.Args[0])
	}
	// d1's expression literal C==V*Cpu.
	last := prog.Rules[1].Body[len(prog.Rules[1].Body)-1]
	cond, ok := last.(*CondLit)
	if !ok {
		t.Fatalf("d1 last literal = %T, want CondLit", last)
	}
	bin, ok := cond.Expr.(*BinTerm)
	if !ok || bin.Op != OpEq {
		t.Fatalf("d1 condition = %v", cond.Expr)
	}
}

// The distributed Follow-the-Sun program from section 4.3 (rules r1-r3,
// d1-d11, c1-c4), including location specifiers and SUMABS.
const followSunSrc = `
goal minimize C in aggCost(@X,C).
var migVm(@X,Y,D,R) forall toMigVm(@X,Y,D) domain [-60,60].

r1 toMigVm(@X,Y,D) <- setLink(@X,Y), dc(@X,D).
d1 nextVm(@X,D,R) <- curVm(@X,D,R1), migVm(@X,Y,D,R2), R==R1-R2.
d2 nborNextVm(@X,Y,D,R) <- link(@Y,X), curVm(@Y,D,R1),
   migVm(@X,Y,D,R2), R==R1+R2.
d3 aggCommCost(@X,SUM<Cost>) <- nextVm(@X,D,R), commCost(@X,D,C), Cost==R*C.
d4 aggOpCost(@X,SUM<Cost>) <- nextVm(@X,D,R), opCost(@X,C), Cost==R*C.
d5 nborAggCommCost(@X,SUM<Cost>) <- link(@Y,X), commCost(@Y,D,C),
   nborNextVm(@X,Y,D,R), Cost==R*C.
d6 nborAggOpCost(@X,SUM<Cost>) <- link(@Y,X), opCost(@Y,C),
   nborNextVm(@X,Y,D,R), Cost==R*C.
d7 aggMigCost(@X,SUMABS<Cost>) <- migVm(@X,Y,D,R), migCost(@X,Y,C), Cost==R*C.
d8 aggCost(@X,C) <- aggCommCost(@X,C1), aggOpCost(@X,C2), aggMigCost(@X,C3),
   nborAggCommCost(@X,C4), nborAggOpCost(@X,C5), C==C1+C2+C3+C4+C5.
d9 aggNextVm(@X,SUM<R>) <- nextVm(@X,D,R).
c1 aggNextVm(@X,R1) -> resource(@X,R2), R1<=R2.
d10 aggNborNextVm(@X,Y,SUM<R>) <- nborNextVm(@X,Y,D,R).
c2 aggNborNextVm(@X,Y,R1) -> link(@Y,X), resource(@Y,R2), R1<=R2.
r2 migVm(@Y,X,D,R2) <- setLink(@X,Y), migVm(@X,Y,D,R1), R2:=-R1.
r3 curVm(@X,D,R) <- curVm(@X,D,R1), migVm(@X,Y,D,R2), R:=R1-R2.
d11 aggMigVm(@X,Y,SUMABS<R>) <- migVm(@X,Y,D,R).
c3 aggMigVm(@X,Y,R) -> R<=max_migrates.
c4 aggCost(@X,C) -> originCost(@X,C2), C<=cost_thres*C2.
`

func TestParseFollowTheSun(t *testing.T) {
	prog, err := Parse(followSunSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 18 {
		t.Fatalf("got %d rules, want 18", len(prog.Rules))
	}
	// Location specifiers.
	r1 := prog.RuleByLabel("r1")
	if r1 == nil {
		t.Fatal("r1 missing")
	}
	if r1.Head.LocVar() != "X" {
		t.Fatalf("r1 head location = %q, want X", r1.Head.LocVar())
	}
	d2 := prog.RuleByLabel("d2")
	bodyAtom := d2.Body[0].(*AtomLit).Atom
	if bodyAtom.Pred != "link" || bodyAtom.LocVar() != "Y" {
		t.Fatalf("d2 first body atom = %v", bodyAtom)
	}
	// r2's assignment literal R2:=-R1.
	r2 := prog.RuleByLabel("r2")
	asn, ok := r2.Body[len(r2.Body)-1].(*AssignLit)
	if !ok || asn.Var != "R2" {
		t.Fatalf("r2 assignment = %v", r2.Body[len(r2.Body)-1])
	}
	if _, ok := asn.Expr.(*NegTerm); !ok {
		t.Fatalf("r2 assignment rhs = %T, want NegTerm", asn.Expr)
	}
	// d7's SUMABS aggregate.
	d7 := prog.RuleByLabel("d7")
	agg, ok := d7.Head.Args[1].(*AggTerm)
	if !ok || agg.Func != AggSumAbs {
		t.Fatalf("d7 aggregate = %v", d7.Head.Args[1])
	}
	// c3's parameter max_migrates.
	c3 := prog.RuleByLabel("c3")
	cond := c3.Body[0].(*CondLit)
	bin := cond.Expr.(*BinTerm)
	if _, ok := bin.R.(*ParamTerm); !ok {
		t.Fatalf("c3 rhs = %T, want ParamTerm", bin.R)
	}
	// Domain clause.
	if prog.Vars[0].Domain == nil || prog.Vars[0].Domain.Lo != -60 || prog.Vars[0].Domain.Hi != 60 {
		t.Fatalf("domain = %v", prog.Vars[0].Domain)
	}
}

// Wireless centralized channel selection from appendix A.2, including the
// reified interference cost and the UNIQUE aggregate.
const wirelessSrc = `
goal minimize C in totalCost(C).
var assign(X,Y,C) forall link(X,Y) domain {1,6,11}.

d1 cost(X,Y,Z,C) <- assign(X,Y,C1), assign(X,Z,C2),
   Y!=Z, (C==1)==(|C1-C2|<F_mindiff).
d2 totalCost(SUM<C>) <- cost(X,Y,Z,C).
c1 assign(X,Y,C) -> primaryUser(X,C2), C!=C2.
c2 assign(X,Y,C) -> assign(Y,X,C).
d3 uniqueChannel(X,UNIQUE<C>) <- assign(X,Y,C).
c3 uniqueChannel(X,Count) -> numInterface(X,K), Count<=K.
`

func TestParseWireless(t *testing.T) {
	prog, err := Parse(wirelessSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 6 {
		t.Fatalf("got %d rules, want 6", len(prog.Rules))
	}
	// The reified condition (C==1)==(|C1-C2|<F_mindiff).
	d1 := prog.RuleByLabel("d1")
	cond := d1.Body[len(d1.Body)-1].(*CondLit)
	top, ok := cond.Expr.(*BinTerm)
	if !ok || top.Op != OpEq {
		t.Fatalf("d1 reified condition = %v", cond.Expr)
	}
	inner, ok := top.R.(*BinTerm)
	if !ok || inner.Op != OpLt {
		t.Fatalf("d1 inner comparison = %v", top.R)
	}
	if _, ok := inner.L.(*AbsTerm); !ok {
		t.Fatalf("d1 abs = %T", inner.L)
	}
	// F_mindiff is an uppercase parameter, parsed as a variable term and
	// bound later by the runtime.
	if vt, ok := inner.R.(*VarTerm); !ok || vt.Name != "F_mindiff" {
		t.Fatalf("F_mindiff = %v", inner.R)
	}
	// Domain set {1,6,11}.
	d := prog.Vars[0].Domain
	if d == nil || len(d.Explicit) != 3 || d.Explicit[1] != 6 {
		t.Fatalf("domain = %v", d)
	}
	// UNIQUE aggregate.
	d3 := prog.RuleByLabel("d3")
	agg := d3.Head.Args[1].(*AggTerm)
	if agg.Func != AggUnique {
		t.Fatalf("d3 aggregate = %v", agg)
	}
}

func TestParseFacts(t *testing.T) {
	prog, err := Parse(`
vm("vm1", 50, 1024).
vm("vm2", 30, 2048).
host("h1", 0, 32768).
weight(0.5).
flag(true).
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Facts) != 5 {
		t.Fatalf("got %d facts, want 5", len(prog.Facts))
	}
	f0 := prog.Facts[0].Atom
	if f0.Pred != "vm" || len(f0.Args) != 3 {
		t.Fatalf("fact 0 = %v", f0)
	}
	c := f0.Args[0].(*ConstTerm)
	if c.Val.Kind != KindString || c.Val.S != "vm1" {
		t.Fatalf("fact arg = %v", c.Val)
	}
	if w := prog.Facts[3].Atom.Args[0].(*ConstTerm); w.Val.Kind != KindFloat || w.Val.F != 0.5 {
		t.Fatalf("float fact = %v", w.Val)
	}
	if b := prog.Facts[4].Atom.Args[0].(*ConstTerm); b.Val.Kind != KindBool || !b.Val.B {
		t.Fatalf("bool fact = %v", b.Val)
	}
}

func TestParseNegativeFactArg(t *testing.T) {
	prog, err := Parse(`delta("a", -5).`)
	if err != nil {
		t.Fatal(err)
	}
	c := prog.Facts[0].Atom.Args[1].(*ConstTerm)
	if c.Val.I != -5 {
		t.Fatalf("negative literal = %v", c.Val)
	}
}

func TestParseGoalSatisfy(t *testing.T) {
	prog, err := Parse(`goal satisfy assign(X,C).`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Goal.Sense != GoalSatisfy || prog.Goal.VarName != "" {
		t.Fatalf("goal = %v", prog.Goal)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`goal minimize C hostStdevCpu(C).`,                  // missing in
		`r1 p(X) <- q(X)`,                                   // missing period
		`p(X <- q(X).`,                                      // unbalanced paren
		`var assign(V) domain [1,0] forall t(V)`,            // clauses out of order
		`goal minimize C in t(C). goal minimize D in u(D).`, // duplicate goal
		`r1 p("unterminated) <- q(X).`,
		`p(X) :< q(X).`,
		`fact(X).`,           // fact with variable
		`lbl fact(1).`,       // labeled fact
		`p(1) = q(2).`,       // stray =
		`r1 p(X) <- q(X), .`, // empty literal
	}
	for i, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d (%q): expected error, got none", i, src)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, src := range []string{acloudSrc, followSunSrc, wirelessSrc} {
		p1, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		printed := p1.String()
		p2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse failed: %v\nprinted:\n%s", err, printed)
		}
		if p2.String() != printed {
			t.Fatalf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", printed, p2.String())
		}
	}
}

func TestParseCommentStyles(t *testing.T) {
	prog, err := Parse(`
// line comment
# hash comment
/* block
   comment */
p(1). // trailing
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Facts) != 1 {
		t.Fatalf("facts = %d, want 1", len(prog.Facts))
	}
}

func TestParseClassicDatalogArrow(t *testing.T) {
	prog, err := Parse(`r1 path(X,Y) :- edge(X,Y).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Rules) != 1 || prog.Rules[0].Kind != KindDerivation {
		t.Fatalf("classic arrow not accepted: %v", prog.Rules)
	}
}

func TestParseZeroArityAtomRejectedAsFact(t *testing.T) {
	prog, err := Parse(`r1 trigger() <- tick().`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Rules[0].Head.Pred != "trigger" || len(prog.Rules[0].Head.Args) != 0 {
		t.Fatalf("zero-arity atom = %v", prog.Rules[0].Head)
	}
}

func TestValueHelpers(t *testing.T) {
	if !IntVal(3).Equal(FloatVal(3)) {
		t.Error("numeric cross-kind equality broken")
	}
	if IntVal(3).Equal(StringVal("3")) {
		t.Error("int should not equal string")
	}
	if StringVal("a").Key() == StringVal("b").Key() {
		t.Error("Key collision")
	}
	if IntVal(-1).Num() != -1 || BoolVal(true).Num() != 1 {
		t.Error("Num broken")
	}
	if s := FloatVal(2.5).String(); s != "2.5" {
		t.Errorf("FloatVal.String = %q", s)
	}
	if s := StringVal("x").String(); s != `"x"` {
		t.Errorf("StringVal.String = %q", s)
	}
}

func TestLexerPositions(t *testing.T) {
	toks, err := Lex("p(X)\n  <- q(X).")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Fatalf("first token pos = %v", toks[0].Pos)
	}
	// The arrow is on line 2.
	var arrow *Token
	for i := range toks {
		if toks[i].Kind == TokLArrow {
			arrow = &toks[i]
		}
	}
	if arrow == nil || arrow.Pos.Line != 2 {
		t.Fatalf("arrow pos = %v", arrow)
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Parse("p(X) <-")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "colog:") {
		t.Fatalf("error = %q, want colog: prefix", err)
	}
}
