package colog

import (
	"strings"
	"unicode"
)

// Lexer turns Colog source text into a token stream.
type Lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

// NewLexer creates a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: []rune(src), line: 1, col: 1}
}

// Lex tokenizes the entire input, returning the token list (terminated by a
// TokEOF token) or the first error encountered.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) peek() rune {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *Lexer) peek2() rune {
	if lx.pos+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+1]
}

func (lx *Lexer) advance() rune {
	r := lx.src[lx.pos]
	lx.pos++
	if r == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return r
}

func (lx *Lexer) here() Pos { return Pos{lx.line, lx.col} }

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.pos < len(lx.src) {
		r := lx.peek()
		switch {
		case unicode.IsSpace(r):
			lx.advance()
		case r == '/' && lx.peek2() == '/':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case r == '#':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case r == '/' && lx.peek2() == '*':
			start := lx.here()
			lx.advance()
			lx.advance()
			closed := false
			for lx.pos < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return errf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := lx.here()
	if lx.pos >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	r := lx.peek()
	switch {
	case unicode.IsLetter(r) || r == '_':
		return lx.lexIdent(pos), nil
	case unicode.IsDigit(r):
		return lx.lexNumber(pos)
	case r == '"':
		return lx.lexString(pos)
	}
	lx.advance()
	two := func(next rune, k2 TokenKind, k1 TokenKind) Token {
		if lx.peek() == next {
			lx.advance()
			return Token{Kind: k2, Pos: pos}
		}
		return Token{Kind: k1, Pos: pos}
	}
	switch r {
	case '(':
		return Token{Kind: TokLParen, Pos: pos}, nil
	case ')':
		return Token{Kind: TokRParen, Pos: pos}, nil
	case ',':
		return Token{Kind: TokComma, Pos: pos}, nil
	case '.':
		return Token{Kind: TokPeriod, Pos: pos}, nil
	case '@':
		return Token{Kind: TokAt, Pos: pos}, nil
	case '[':
		return Token{Kind: TokLBracket, Pos: pos}, nil
	case ']':
		return Token{Kind: TokRBracket, Pos: pos}, nil
	case '{':
		return Token{Kind: TokLBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: TokRBrace, Pos: pos}, nil
	case '+':
		return Token{Kind: TokPlus, Pos: pos}, nil
	case '*':
		return Token{Kind: TokStar, Pos: pos}, nil
	case '/':
		return Token{Kind: TokSlash, Pos: pos}, nil
	case '|':
		return two('|', TokOrOr, TokBar), nil
	case '&':
		if lx.peek() == '&' {
			lx.advance()
			return Token{Kind: TokAndAnd, Pos: pos}, nil
		}
		return Token{}, errf(pos, "unexpected character %q (did you mean &&?)", "&")
	case '-':
		return two('>', TokRArrow, TokMinus), nil
	case '<':
		switch lx.peek() {
		case '-':
			lx.advance()
			return Token{Kind: TokLArrow, Pos: pos}, nil
		case '=':
			lx.advance()
			return Token{Kind: TokLe, Pos: pos}, nil
		}
		return Token{Kind: TokLt, Pos: pos}, nil
	case '>':
		return two('=', TokGe, TokGt), nil
	case '=':
		if lx.peek() == '=' {
			lx.advance()
			return Token{Kind: TokEq, Pos: pos}, nil
		}
		return Token{}, errf(pos, "unexpected character %q (did you mean ==?)", "=")
	case '!':
		return two('=', TokNe, TokNot), nil
	case ':':
		if lx.peek() == '=' {
			lx.advance()
			return Token{Kind: TokAssign, Pos: pos}, nil
		}
		if lx.peek() == '-' { // classic Datalog :- accepted as <-
			lx.advance()
			return Token{Kind: TokLArrow, Pos: pos}, nil
		}
		return Token{}, errf(pos, "unexpected character %q", ":")
	}
	return Token{}, errf(pos, "unexpected character %q", string(r))
}

func (lx *Lexer) lexIdent(pos Pos) Token {
	var b strings.Builder
	for lx.pos < len(lx.src) {
		r := lx.peek()
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
			b.WriteRune(r)
			lx.advance()
		} else {
			break
		}
	}
	text := b.String()
	if k, ok := keywords[text]; ok {
		return Token{Kind: k, Text: text, Pos: pos}
	}
	first := []rune(text)[0]
	if unicode.IsUpper(first) {
		return Token{Kind: TokVar, Text: text, Pos: pos}
	}
	return Token{Kind: TokIdent, Text: text, Pos: pos}
}

func (lx *Lexer) lexNumber(pos Pos) (Token, error) {
	var b strings.Builder
	kind := TokInt
	for lx.pos < len(lx.src) && unicode.IsDigit(lx.peek()) {
		b.WriteRune(lx.advance())
	}
	// A '.' is a decimal point only when followed by a digit; otherwise it
	// terminates the statement.
	if lx.peek() == '.' && unicode.IsDigit(lx.peek2()) {
		kind = TokFloat
		b.WriteRune(lx.advance())
		for lx.pos < len(lx.src) && unicode.IsDigit(lx.peek()) {
			b.WriteRune(lx.advance())
		}
	}
	return Token{Kind: kind, Text: b.String(), Pos: pos}, nil
}

func (lx *Lexer) lexString(pos Pos) (Token, error) {
	lx.advance() // opening quote
	var b strings.Builder
	for {
		if lx.pos >= len(lx.src) {
			return Token{}, errf(pos, "unterminated string literal")
		}
		r := lx.advance()
		if r == '"' {
			return Token{Kind: TokString, Text: b.String(), Pos: pos}, nil
		}
		if r == '\\' {
			if lx.pos >= len(lx.src) {
				return Token{}, errf(pos, "unterminated string escape")
			}
			esc := lx.advance()
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				return Token{}, errf(pos, "unknown escape \\%c", esc)
			}
			continue
		}
		b.WriteRune(r)
	}
}
