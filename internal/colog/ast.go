package colog

import (
	"fmt"
	"strconv"
	"strings"
)

// ValueKind tags constant literal types.
type ValueKind int

const (
	// KindInt is a 64-bit integer.
	KindInt ValueKind = iota
	// KindFloat is a 64-bit float.
	KindFloat
	// KindString is a string (also used for node addresses).
	KindString
	// KindBool is a boolean.
	KindBool
)

// Value is a constant literal value appearing in facts, rules, or parameter
// bindings.
type Value struct {
	Kind ValueKind
	I    int64
	F    float64
	S    string
	B    bool
}

// IntVal, FloatVal, StringVal and BoolVal construct constant values.
func IntVal(v int64) Value     { return Value{Kind: KindInt, I: v} }
func FloatVal(v float64) Value { return Value{Kind: KindFloat, F: v} }
func StringVal(v string) Value { return Value{Kind: KindString, S: v} }
func BoolVal(v bool) Value     { return Value{Kind: KindBool, B: v} }

// quoteString renders s as a Colog string literal using only the escapes
// the lexer understands (\" \\ \n \t). Every other character — including
// control characters — is emitted verbatim, which the lexer accepts inside
// quotes; Go's %q would produce \xNN-style escapes the lexer rejects,
// breaking the print/reparse fixpoint (found by FuzzParse).
func quoteString(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 2)
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// Num returns the numeric value as float64 (ints widen; bools are 0/1).
func (v Value) Num() float64 {
	switch v.Kind {
	case KindInt:
		return float64(v.I)
	case KindFloat:
		return v.F
	case KindBool:
		if v.B {
			return 1
		}
		return 0
	default:
		return 0
	}
}

// IsNumeric reports whether the value is an int or float.
func (v Value) IsNumeric() bool { return v.Kind == KindInt || v.Kind == KindFloat }

// Equal compares two values; ints and floats compare numerically.
func (v Value) Equal(o Value) bool {
	if v.IsNumeric() && o.IsNumeric() {
		return v.Num() == o.Num()
	}
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindString:
		return v.S == o.S
	case KindBool:
		return v.B == o.B
	}
	return false
}

// String renders the value as Colog source.
func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return fmt.Sprintf("%d", v.I)
	case KindFloat:
		return fmt.Sprintf("%g", v.F)
	case KindString:
		return quoteString(v.S)
	case KindBool:
		if v.B {
			return "true"
		}
		return "false"
	}
	return "?"
}

// Key returns a map-key representation of the value.
func (v Value) Key() string {
	switch v.Kind {
	case KindInt:
		return "i" + strconv.FormatInt(v.I, 10)
	case KindFloat:
		return "f" + strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return "s" + v.S
	case KindBool:
		if v.B {
			return "b1"
		}
		return "b0"
	}
	return "?"
}

// AppendKey appends the value's map-key representation to dst, avoiding the
// intermediate string allocations of Key on hot paths.
func (v Value) AppendKey(dst []byte) []byte {
	switch v.Kind {
	case KindInt:
		dst = append(dst, 'i')
		return strconv.AppendInt(dst, v.I, 10)
	case KindFloat:
		dst = append(dst, 'f')
		return strconv.AppendFloat(dst, v.F, 'g', -1, 64)
	case KindString:
		dst = append(dst, 's')
		return append(dst, v.S...)
	case KindBool:
		if v.B {
			return append(dst, 'b', '1')
		}
		return append(dst, 'b', '0')
	}
	return append(dst, '?')
}

// BinOp enumerates binary operators in Colog expressions.
type BinOp int

// Binary operator values, in increasing precedence groups.
const (
	OpOr BinOp = iota
	OpAnd
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
)

var binOpNames = map[BinOp]string{
	OpOr: "||", OpAnd: "&&", OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=",
	OpGt: ">", OpGe: ">=", OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
}

// String returns the operator's surface syntax.
func (op BinOp) String() string { return binOpNames[op] }

// IsComparison reports whether the operator yields a boolean from numerics.
func (op BinOp) IsComparison() bool { return op >= OpEq && op <= OpGe }

// IsLogical reports whether the operator combines booleans.
func (op BinOp) IsLogical() bool { return op == OpOr || op == OpAnd }

// Term is a node of a Colog expression or an atom argument.
type Term interface {
	fmt.Stringer
	isTerm()
}

// VarTerm is a Datalog variable (capitalized identifier). Loc marks a
// location specifier (@X).
type VarTerm struct {
	Name string
	Loc  bool
}

func (t *VarTerm) isTerm() {}
func (t *VarTerm) String() string {
	if t.Loc {
		return "@" + t.Name
	}
	return t.Name
}

// ConstTerm is a literal constant.
type ConstTerm struct {
	Val Value
	Loc bool // @"addr" constant location
}

func (t *ConstTerm) isTerm() {}
func (t *ConstTerm) String() string {
	if t.Loc {
		return "@" + t.Val.String()
	}
	return t.Val.String()
}

// ParamTerm is a lowercase identifier used in expression position: a named
// parameter such as max_migrates, bound by the runtime before execution.
type ParamTerm struct {
	Name string
}

func (t *ParamTerm) isTerm()        {}
func (t *ParamTerm) String() string { return t.Name }

// AggTerm is an aggregate argument in a rule head, e.g. SUM<C>.
type AggTerm struct {
	Func AggFunc
	Over string // aggregated variable name
}

func (t *AggTerm) isTerm()        {}
func (t *AggTerm) String() string { return fmt.Sprintf("%s<%s>", t.Func, t.Over) }

// AggFunc enumerates Colog aggregate functions.
type AggFunc int

// Aggregate functions supported by Colog rule heads.
const (
	AggSum AggFunc = iota
	AggSumAbs
	AggCount
	AggMin
	AggMax
	AggAvg
	AggStdev
	AggUnique
)

var aggNames = map[AggFunc]string{
	AggSum: "SUM", AggSumAbs: "SUMABS", AggCount: "COUNT", AggMin: "MIN",
	AggMax: "MAX", AggAvg: "AVG", AggStdev: "STDEV", AggUnique: "UNIQUE",
}

// String returns the Colog keyword for the aggregate.
func (f AggFunc) String() string { return aggNames[f] }

// ParseAggFunc resolves an aggregate keyword; ok is false if unknown.
func ParseAggFunc(name string) (AggFunc, bool) {
	for f, n := range aggNames {
		if n == name {
			return f, true
		}
	}
	return 0, false
}

// BinTerm is a binary expression.
type BinTerm struct {
	Op   BinOp
	L, R Term
}

func (t *BinTerm) isTerm() {}
func (t *BinTerm) String() string {
	return fmt.Sprintf("(%s%s%s)", t.L, t.Op, t.R)
}

// NegTerm is unary minus.
type NegTerm struct {
	X Term
}

func (t *NegTerm) isTerm()        {}
func (t *NegTerm) String() string { return fmt.Sprintf("(-%s)", t.X) }

// NotTerm is logical negation.
type NotTerm struct {
	X Term
}

func (t *NotTerm) isTerm()        {}
func (t *NotTerm) String() string { return fmt.Sprintf("(!%s)", t.X) }

// AbsTerm is |x|.
type AbsTerm struct {
	X Term
}

func (t *AbsTerm) isTerm()        {}
func (t *AbsTerm) String() string { return fmt.Sprintf("|%s|", t.X) }

// FuncTerm is a function call f_name(args...), e.g. f_max(A,B).
type FuncTerm struct {
	Name string
	Args []Term
}

func (t *FuncTerm) isTerm() {}
func (t *FuncTerm) String() string {
	parts := make([]string, len(t.Args))
	for i, a := range t.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", t.Name, strings.Join(parts, ","))
}

// Atom is a predicate with argument terms, e.g. migVm(@X,Y,D,R).
type Atom struct {
	Pred string
	Args []Term
	Pos  Pos
}

// LocArg returns the index of the argument carrying the location specifier,
// or -1 when the atom has none.
func (a *Atom) LocArg() int {
	for i, arg := range a.Args {
		switch t := arg.(type) {
		case *VarTerm:
			if t.Loc {
				return i
			}
		case *ConstTerm:
			if t.Loc {
				return i
			}
		}
	}
	return -1
}

// LocVar returns the name of the location variable, or "" if the atom has no
// variable location specifier.
func (a *Atom) LocVar() string {
	if i := a.LocArg(); i >= 0 {
		if v, ok := a.Args[i].(*VarTerm); ok {
			return v.Name
		}
	}
	return ""
}

// HasAggregate reports whether any argument is an aggregate term.
func (a *Atom) HasAggregate() bool {
	for _, arg := range a.Args {
		if _, ok := arg.(*AggTerm); ok {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the atom.
func (a *Atom) Clone() *Atom {
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		args[i] = CloneTerm(t)
	}
	return &Atom{Pred: a.Pred, Args: args, Pos: a.Pos}
}

func (a *Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return fmt.Sprintf("%s(%s)", a.Pred, strings.Join(parts, ","))
}

// CloneTerm deep-copies a term tree.
func CloneTerm(t Term) Term {
	switch x := t.(type) {
	case *VarTerm:
		c := *x
		return &c
	case *ConstTerm:
		c := *x
		return &c
	case *ParamTerm:
		c := *x
		return &c
	case *AggTerm:
		c := *x
		return &c
	case *BinTerm:
		return &BinTerm{Op: x.Op, L: CloneTerm(x.L), R: CloneTerm(x.R)}
	case *NegTerm:
		return &NegTerm{X: CloneTerm(x.X)}
	case *NotTerm:
		return &NotTerm{X: CloneTerm(x.X)}
	case *AbsTerm:
		return &AbsTerm{X: CloneTerm(x.X)}
	case *FuncTerm:
		args := make([]Term, len(x.Args))
		for i, a := range x.Args {
			args[i] = CloneTerm(a)
		}
		return &FuncTerm{Name: x.Name, Args: args}
	}
	panic(fmt.Sprintf("colog: CloneTerm on unknown term %T", t))
}

// Literal is one element of a rule body: an atom, a boolean condition, or an
// assignment.
type Literal interface {
	fmt.Stringer
	isLiteral()
}

// AtomLit wraps an atom used as a body literal.
type AtomLit struct {
	Atom *Atom
}

func (l *AtomLit) isLiteral()     {}
func (l *AtomLit) String() string { return l.Atom.String() }

// CondLit is a boolean expression literal, e.g. C==V*Cpu or Hid1!=Hid2.
type CondLit struct {
	Expr Term
	Pos  Pos
}

func (l *CondLit) isLiteral()     {}
func (l *CondLit) String() string { return l.Expr.String() }

// AssignLit is an assignment literal, e.g. R2:=-R1.
type AssignLit struct {
	Var  string
	Expr Term
	Pos  Pos
}

func (l *AssignLit) isLiteral()     {}
func (l *AssignLit) String() string { return fmt.Sprintf("%s:=%s", l.Var, l.Expr) }

// RuleKind distinguishes the two rule arrows.
type RuleKind int

const (
	// KindDerivation is head <- body (Datalog or solver derivation).
	KindDerivation RuleKind = iota
	// KindConstraint is head -> body (solver constraint rule).
	KindConstraint
)

// Rule is a Colog rule. Classification into regular / solver derivation /
// solver constraint happens in the analysis package.
type Rule struct {
	Label string // optional, e.g. "r1", "d2", "c3"
	Kind  RuleKind
	Head  *Atom
	Body  []Literal
	Pos   Pos
}

func (r *Rule) String() string {
	arrow := "<-"
	if r.Kind == KindConstraint {
		arrow = "->"
	}
	parts := make([]string, len(r.Body))
	for i, l := range r.Body {
		parts[i] = l.String()
	}
	label := ""
	if r.Label != "" {
		label = r.Label + " "
	}
	return fmt.Sprintf("%s%s %s %s.", label, r.Head, arrow, strings.Join(parts, ", "))
}

// Clone deep-copies a rule.
func (r *Rule) Clone() *Rule {
	body := make([]Literal, len(r.Body))
	for i, l := range r.Body {
		switch x := l.(type) {
		case *AtomLit:
			body[i] = &AtomLit{Atom: x.Atom.Clone()}
		case *CondLit:
			body[i] = &CondLit{Expr: CloneTerm(x.Expr), Pos: x.Pos}
		case *AssignLit:
			body[i] = &AssignLit{Var: x.Var, Expr: CloneTerm(x.Expr), Pos: x.Pos}
		}
	}
	return &Rule{Label: r.Label, Kind: r.Kind, Head: r.Head.Clone(), Body: body, Pos: r.Pos}
}

// GoalDecl is the program's optimization goal:
// goal minimize C in aggCost(@X,C).
type GoalDecl struct {
	Sense   GoalSense
	VarName string // the objective variable, "" for satisfy
	Atom    *Atom  // the table holding the objective
	Pos     Pos
}

// GoalSense is the optimization direction.
type GoalSense int

// Goal senses.
const (
	GoalMinimize GoalSense = iota
	GoalMaximize
	GoalSatisfy
)

// String returns the Colog keyword.
func (s GoalSense) String() string {
	switch s {
	case GoalMinimize:
		return "minimize"
	case GoalMaximize:
		return "maximize"
	default:
		return "satisfy"
	}
}

func (g *GoalDecl) String() string {
	if g.Sense == GoalSatisfy {
		return fmt.Sprintf("goal satisfy %s.", g.Atom)
	}
	return fmt.Sprintf("goal %s %s in %s.", g.Sense, g.VarName, g.Atom)
}

// DomainSpec is the optional domain clause of a var declaration.
type DomainSpec struct {
	// Range domain [Lo,Hi] when Explicit is nil; otherwise the explicit
	// value set.
	Lo, Hi   int64
	Explicit []int64
	// FromTable, when non-empty, draws the candidate values from the single
	// column of the named table at solve time (e.g. availChannel).
	FromTable string
}

func (d *DomainSpec) String() string {
	if d == nil {
		return ""
	}
	if d.FromTable != "" {
		return fmt.Sprintf(" domain %s", d.FromTable)
	}
	if d.Explicit != nil {
		parts := make([]string, len(d.Explicit))
		for i, v := range d.Explicit {
			parts[i] = fmt.Sprintf("%d", v)
		}
		return fmt.Sprintf(" domain {%s}", strings.Join(parts, ","))
	}
	return fmt.Sprintf(" domain [%d,%d]", d.Lo, d.Hi)
}

// VarDecl declares solver variables:
// var assign(Vid,Hid,V) forall toAssign(Vid,Hid) [domain ...].
type VarDecl struct {
	Decl   *Atom // solver table pattern; exactly one attribute is the new solver variable
	ForAll *Atom // binding table
	Domain *DomainSpec
	Pos    Pos
}

func (v *VarDecl) String() string {
	return fmt.Sprintf("var %s forall %s%s.", v.Decl, v.ForAll, v.Domain)
}

// Fact is a ground atom asserted in the program text.
type Fact struct {
	Atom *Atom
	Pos  Pos
}

func (f *Fact) String() string { return f.Atom.String() + "." }

// Program is a parsed Colog program.
type Program struct {
	Goal  *GoalDecl
	Vars  []*VarDecl
	Rules []*Rule
	Facts []*Fact
}

// String renders the program as Colog source.
func (p *Program) String() string {
	var b strings.Builder
	if p.Goal != nil {
		b.WriteString(p.Goal.String())
		b.WriteByte('\n')
	}
	for _, v := range p.Vars {
		b.WriteString(v.String())
		b.WriteByte('\n')
	}
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	for _, f := range p.Facts {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// NumRules returns the rule count plus declarations, the unit Table 2 counts
// as "Colog rules".
func (p *Program) NumRules() int {
	n := len(p.Rules) + len(p.Vars)
	if p.Goal != nil {
		n++
	}
	return n
}

// RuleByLabel finds a rule by its label, or nil.
func (p *Program) RuleByLabel(label string) *Rule {
	for _, r := range p.Rules {
		if r.Label == label {
			return r
		}
	}
	return nil
}
