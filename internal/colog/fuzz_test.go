package colog

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParse feeds arbitrary source to the Colog parser. Two properties must
// hold on every input:
//
//  1. the parser never panics — malformed programs return an error;
//  2. print/reparse is stable: any program the parser accepts renders
//     (Program.String) back into a program the parser accepts, and that
//     second parse renders identically (the fixpoint the code generator and
//     the network serializer rely on).
//
// The seed corpus is the shipped example programs plus a few hand-picked
// constructs (location specifiers, aggregates, goals, parameters).
func FuzzParse(f *testing.F) {
	dir := filepath.Join("..", "..", "examples", "programs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		f.Fatalf("seed corpus dir: %v", err)
	}
	nSeeds := 0
	for _, ent := range entries {
		if filepath.Ext(ent.Name()) != ".colog" {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
		nSeeds++
	}
	if nSeeds == 0 {
		f.Fatal("no .colog seeds found in examples/programs")
	}
	f.Add(`goal minimize C in cost(C).
var assign(X,Y,V) forall pair(X,Y).
r1 pair(X,Y) <- a(X), b(Y).
d1 cost(SUM<C>) <- assign(X,Y,V), w(X,C2), C==V*C2.
c1 cost(C) -> C>=0.`)
	f.Add(`d0 out(@X,D,SUM<R>) <- link(@Y,X), store(@Y,D,R), want(@X,D).`)
	f.Add(`r1 h(X,COUNT<Y>) <- e(X,Y), Y>p_thres, X!="lit".`)
	f.Add("r1 a(X) <- b(X).\n// comment\nr2 c(X) <- a(X), X<5.")

	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return // rejected input: fine, as long as we did not panic
		}
		printed := prog.String()
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("accepted program failed to re-parse: %v\noriginal:\n%s\nprinted:\n%s", err, src, printed)
		}
		if got := again.String(); got != printed {
			t.Fatalf("print/reparse not a fixpoint:\nfirst:\n%s\nsecond:\n%s", printed, got)
		}
	})
}
