// Package colog implements the Colog declarative policy language from the
// Cologne paper: distributed Datalog (NDlog-style @ location specifiers)
// extended with goal/var declarations, solver derivation rules (<-) and
// solver constraint rules (->), aggregates, and arithmetic/boolean
// expressions over solver attributes.
package colog

import "fmt"

// TokenKind enumerates lexical token categories.
type TokenKind int

const (
	// TokEOF marks end of input.
	TokEOF TokenKind = iota
	// TokIdent is a lowercase identifier: predicate names, constants,
	// parameters (e.g. max_migrates).
	TokIdent
	// TokVar is an uppercase identifier: Datalog variables and aggregate
	// function names.
	TokVar
	// TokInt and TokFloat are numeric literals, TokString a double-quoted
	// string literal.
	TokInt
	TokFloat
	TokString
	// Punctuation and operators.
	TokLParen   // (
	TokRParen   // )
	TokComma    // ,
	TokPeriod   // .
	TokAt       // @
	TokLArrow   // <-
	TokRArrow   // ->
	TokAssign   // :=
	TokEq       // ==
	TokNe       // !=
	TokLt       // <
	TokLe       // <=
	TokGt       // >
	TokGe       // >=
	TokPlus     // +
	TokMinus    // -
	TokStar     // *
	TokSlash    // /
	TokBar      // |
	TokAndAnd   // &&
	TokOrOr     // ||
	TokNot      // !
	TokLBracket // [
	TokRBracket // ]
	TokLBrace   // {
	TokRBrace   // }
	// Keywords.
	TokGoal     // goal
	TokVarKw    // var
	TokMinimize // minimize
	TokMaximize // maximize
	TokSatisfy  // satisfy
	TokIn       // in
	TokForall   // forall
	TokDomain   // domain
)

var tokenNames = map[TokenKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokVar: "variable", TokInt: "integer",
	TokFloat: "float", TokString: "string", TokLParen: "(", TokRParen: ")",
	TokComma: ",", TokPeriod: ".", TokAt: "@", TokLArrow: "<-", TokRArrow: "->",
	TokAssign: ":=", TokEq: "==", TokNe: "!=", TokLt: "<", TokLe: "<=",
	TokGt: ">", TokGe: ">=", TokPlus: "+", TokMinus: "-", TokStar: "*",
	TokSlash: "/", TokBar: "|", TokAndAnd: "&&", TokOrOr: "||", TokNot: "!",
	TokLBracket: "[", TokRBracket: "]", TokLBrace: "{", TokRBrace: "}",
	TokGoal: "goal", TokVarKw: "var", TokMinimize: "minimize",
	TokMaximize: "maximize", TokSatisfy: "satisfy", TokIn: "in",
	TokForall: "forall", TokDomain: "domain",
}

// String returns a printable token kind name.
func (k TokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

var keywords = map[string]TokenKind{
	"goal": TokGoal, "var": TokVarKw, "minimize": TokMinimize,
	"maximize": TokMaximize, "satisfy": TokSatisfy, "in": TokIn,
	"forall": TokForall, "domain": TokDomain,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexical token with its source position and literal text.
type Token struct {
	Kind TokenKind
	Text string
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case TokIdent, TokVar, TokInt, TokFloat, TokString:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}

// SyntaxError is a lexical or parse error with position information.
type SyntaxError struct {
	Pos Pos
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("colog: %s: %s", e.Pos, e.Msg)
}

func errf(pos Pos, format string, args ...interface{}) *SyntaxError {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
