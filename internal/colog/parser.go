package colog

import (
	"strconv"
)

// Parser builds a Program AST from a token stream.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a complete Colog program from source text.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseProgram()
}

// MustParse parses src and panics on error; intended for embedding the
// paper's canonical programs as package-level constants.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) peek() Token { return p.toks[min(p.pos+1, len(p.toks)-1)] }
func (p *Parser) at(k TokenKind) bool {
	return p.cur().Kind == k
}

func (p *Parser) advance() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) expect(k TokenKind) (Token, error) {
	if !p.at(k) {
		return Token{}, errf(p.cur().Pos, "expected %s, found %s", k, p.cur())
	}
	return p.advance(), nil
}

func (p *Parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for !p.at(TokEOF) {
		switch p.cur().Kind {
		case TokGoal:
			g, err := p.parseGoal()
			if err != nil {
				return nil, err
			}
			if prog.Goal != nil {
				return nil, errf(g.Pos, "duplicate goal declaration")
			}
			prog.Goal = g
		case TokVarKw:
			v, err := p.parseVarDecl()
			if err != nil {
				return nil, err
			}
			prog.Vars = append(prog.Vars, v)
		case TokIdent:
			if err := p.parseRuleOrFact(prog); err != nil {
				return nil, err
			}
		default:
			return nil, errf(p.cur().Pos, "expected statement, found %s", p.cur())
		}
	}
	return prog, nil
}

// parseGoal parses: goal minimize C in table(...). | goal satisfy table(...).
func (p *Parser) parseGoal() (*GoalDecl, error) {
	kw, _ := p.expect(TokGoal)
	g := &GoalDecl{Pos: kw.Pos}
	switch p.cur().Kind {
	case TokMinimize:
		g.Sense = GoalMinimize
	case TokMaximize:
		g.Sense = GoalMaximize
	case TokSatisfy:
		g.Sense = GoalSatisfy
	default:
		return nil, errf(p.cur().Pos, "expected minimize, maximize or satisfy, found %s", p.cur())
	}
	p.advance()
	if g.Sense != GoalSatisfy {
		v, err := p.expect(TokVar)
		if err != nil {
			return nil, err
		}
		g.VarName = v.Text
		if _, err := p.expect(TokIn); err != nil {
			return nil, err
		}
	}
	atom, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	g.Atom = atom
	if _, err := p.expect(TokPeriod); err != nil {
		return nil, err
	}
	return g, nil
}

// parseVarDecl parses: var decl(...) forall table(...) [domain ...] .
func (p *Parser) parseVarDecl() (*VarDecl, error) {
	kw, _ := p.expect(TokVarKw)
	decl := &VarDecl{Pos: kw.Pos}
	atom, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	decl.Decl = atom
	if _, err := p.expect(TokForall); err != nil {
		return nil, err
	}
	fa, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	decl.ForAll = fa
	if p.at(TokDomain) {
		p.advance()
		spec, err := p.parseDomainSpec()
		if err != nil {
			return nil, err
		}
		decl.Domain = spec
	}
	if _, err := p.expect(TokPeriod); err != nil {
		return nil, err
	}
	return decl, nil
}

func (p *Parser) parseDomainSpec() (*DomainSpec, error) {
	switch p.cur().Kind {
	case TokLBracket:
		p.advance()
		lo, err := p.parseSignedInt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokComma); err != nil {
			return nil, err
		}
		hi, err := p.parseSignedInt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		if hi < lo {
			return nil, errf(p.cur().Pos, "empty domain [%d,%d]", lo, hi)
		}
		return &DomainSpec{Lo: lo, Hi: hi}, nil
	case TokLBrace:
		p.advance()
		var vals []int64
		for {
			v, err := p.parseSignedInt()
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
			if p.at(TokComma) {
				p.advance()
				continue
			}
			break
		}
		if _, err := p.expect(TokRBrace); err != nil {
			return nil, err
		}
		return &DomainSpec{Explicit: vals}, nil
	case TokIdent:
		t := p.advance()
		return &DomainSpec{FromTable: t.Text}, nil
	}
	return nil, errf(p.cur().Pos, "expected domain specification, found %s", p.cur())
}

func (p *Parser) parseSignedInt() (int64, error) {
	neg := false
	if p.at(TokMinus) {
		p.advance()
		neg = true
	}
	t, err := p.expect(TokInt)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil {
		return 0, errf(t.Pos, "invalid integer %q", t.Text)
	}
	if neg {
		v = -v
	}
	return v, nil
}

// parseRuleOrFact handles statements starting with a lowercase identifier:
// an optional rule label, then a head atom, then <-, -> or . (fact).
func (p *Parser) parseRuleOrFact(prog *Program) error {
	label := ""
	if p.at(TokIdent) && p.peek().Kind == TokIdent {
		label = p.advance().Text
	}
	head, err := p.parseAtom()
	if err != nil {
		return err
	}
	switch p.cur().Kind {
	case TokPeriod:
		p.advance()
		if label != "" {
			return errf(head.Pos, "fact %s cannot carry a rule label", head.Pred)
		}
		for _, a := range head.Args {
			if _, ok := a.(*ConstTerm); !ok {
				return errf(head.Pos, "fact %s has non-constant argument %s", head.Pred, a)
			}
		}
		prog.Facts = append(prog.Facts, &Fact{Atom: head, Pos: head.Pos})
		return nil
	case TokLArrow, TokRArrow:
		kind := KindDerivation
		if p.cur().Kind == TokRArrow {
			kind = KindConstraint
		}
		p.advance()
		body, err := p.parseBody()
		if err != nil {
			return err
		}
		if _, err := p.expect(TokPeriod); err != nil {
			return err
		}
		prog.Rules = append(prog.Rules, &Rule{
			Label: label, Kind: kind, Head: head, Body: body, Pos: head.Pos,
		})
		return nil
	}
	return errf(p.cur().Pos, "expected <-, -> or . after atom, found %s", p.cur())
}

func (p *Parser) parseBody() ([]Literal, error) {
	var body []Literal
	for {
		lit, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		body = append(body, lit)
		if p.at(TokComma) {
			p.advance()
			continue
		}
		return body, nil
	}
}

// parseLiteral parses one body element: an atom, an assignment (Var := expr),
// or a boolean condition.
func (p *Parser) parseLiteral() (Literal, error) {
	// Atom: identifier followed by '('.
	if p.at(TokIdent) && p.peek().Kind == TokLParen {
		atom, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		return &AtomLit{Atom: atom}, nil
	}
	// Assignment: Var := expr.
	if p.at(TokVar) && p.peek().Kind == TokAssign {
		v := p.advance()
		p.advance() // :=
		expr, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignLit{Var: v.Text, Expr: expr, Pos: v.Pos}, nil
	}
	pos := p.cur().Pos
	expr, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &CondLit{Expr: expr, Pos: pos}, nil
}

// parseAtom parses pred(arg, ...) where each argument may carry a location
// specifier (@X) or be an aggregate (SUM<C>) or an expression.
func (p *Parser) parseAtom() (*Atom, error) {
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	atom := &Atom{Pred: name.Text, Pos: name.Pos}
	if p.at(TokRParen) {
		p.advance()
		return atom, nil
	}
	for {
		arg, err := p.parseAtomArg()
		if err != nil {
			return nil, err
		}
		atom.Args = append(atom.Args, arg)
		if p.at(TokComma) {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return atom, nil
}

func (p *Parser) parseAtomArg() (Term, error) {
	// Location specifier.
	if p.at(TokAt) {
		p.advance()
		switch p.cur().Kind {
		case TokVar:
			t := p.advance()
			return &VarTerm{Name: t.Text, Loc: true}, nil
		case TokString:
			t := p.advance()
			return &ConstTerm{Val: StringVal(t.Text), Loc: true}, nil
		case TokIdent:
			t := p.advance()
			return &ConstTerm{Val: StringVal(t.Text), Loc: true}, nil
		}
		return nil, errf(p.cur().Pos, "expected location after @, found %s", p.cur())
	}
	// Aggregate: AGGNAME < Var >.
	if p.at(TokVar) {
		if f, ok := ParseAggFunc(p.cur().Text); ok && p.peek().Kind == TokLt {
			save := p.pos
			p.advance() // agg name
			p.advance() // <
			if p.at(TokVar) && p.peek().Kind == TokGt {
				over := p.advance().Text
				p.advance() // >
				return &AggTerm{Func: f, Over: over}, nil
			}
			// Not an aggregate after all (e.g. a variable named SUM compared
			// with something); rewind and parse as expression.
			p.pos = save
		}
	}
	return p.parseExpr()
}

// Expression grammar, lowest to highest precedence:
//
//	expr   := and { '||' and }
//	and    := cmp { '&&' cmp }
//	cmp    := add { (==|!=|<|<=|>|>=) add }
//	add    := mul { (+|-) mul }
//	mul    := unary { (*|/) unary }
//	unary  := '-' unary | '!' unary | primary
//	primary:= number | string | Var | param | f(args) | '(' expr ')' | '|' expr '|'
func (p *Parser) parseExpr() (Term, error) { return p.parseOr() }

func (p *Parser) parseOr() (Term, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.at(TokOrOr) {
		p.advance()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinTerm{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Term, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.at(TokAndAnd) {
		p.advance()
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = &BinTerm{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

var cmpOps = map[TokenKind]BinOp{
	TokEq: OpEq, TokNe: OpNe, TokLt: OpLt, TokLe: OpLe, TokGt: OpGt, TokGe: OpGe,
}

func (p *Parser) parseCmp() (Term, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for {
		op, ok := cmpOps[p.cur().Kind]
		if !ok {
			return l, nil
		}
		p.advance()
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		l = &BinTerm{Op: op, L: l, R: r}
	}
}

func (p *Parser) parseAdd() (Term, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.at(TokPlus) || p.at(TokMinus) {
		op := OpAdd
		if p.at(TokMinus) {
			op = OpSub
		}
		p.advance()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &BinTerm{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseMul() (Term, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(TokStar) || p.at(TokSlash) {
		op := OpMul
		if p.at(TokSlash) {
			op = OpDiv
		}
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinTerm{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseUnary() (Term, error) {
	switch p.cur().Kind {
	case TokMinus:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold -literal into a constant.
		if c, ok := x.(*ConstTerm); ok && c.Val.IsNumeric() && !c.Loc {
			if c.Val.Kind == KindInt {
				return &ConstTerm{Val: IntVal(-c.Val.I)}, nil
			}
			return &ConstTerm{Val: FloatVal(-c.Val.F)}, nil
		}
		return &NegTerm{X: x}, nil
	case TokNot:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &NotTerm{X: x}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Term, error) {
	switch p.cur().Kind {
	case TokInt:
		t := p.advance()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, errf(t.Pos, "invalid integer %q", t.Text)
		}
		return &ConstTerm{Val: IntVal(v)}, nil
	case TokFloat:
		t := p.advance()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, errf(t.Pos, "invalid float %q", t.Text)
		}
		return &ConstTerm{Val: FloatVal(v)}, nil
	case TokString:
		t := p.advance()
		return &ConstTerm{Val: StringVal(t.Text)}, nil
	case TokVar:
		t := p.advance()
		return &VarTerm{Name: t.Text}, nil
	case TokIdent:
		t := p.advance()
		if t.Text == "true" {
			return &ConstTerm{Val: BoolVal(true)}, nil
		}
		if t.Text == "false" {
			return &ConstTerm{Val: BoolVal(false)}, nil
		}
		// Function call in expression position: f_max(A,B).
		if p.at(TokLParen) {
			p.advance()
			var args []Term
			if !p.at(TokRParen) {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.at(TokComma) {
						p.advance()
						continue
					}
					break
				}
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return &FuncTerm{Name: t.Text, Args: args}, nil
		}
		return &ParamTerm{Name: t.Text}, nil
	case TokLParen:
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokBar:
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokBar); err != nil {
			return nil, err
		}
		return &AbsTerm{X: e}, nil
	}
	return nil, errf(p.cur().Pos, "expected expression, found %s", p.cur())
}
